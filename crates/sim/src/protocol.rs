//! Typed protocol messages and their wire encoding.
//!
//! Three messages flow in the system (paper §IV-B/C):
//!
//! 1. RSU → vehicles: a broadcast [`Query`] carrying the RSU's RID, its
//!    public-key certificate, and its bit-array size;
//! 2. vehicle → RSU: a [`BitReport`] carrying *only* a bit index (under a
//!    one-time MAC address) — the entire privacy argument rests on this
//!    being the only vehicle-originated data;
//! 3. RSU → central server (end of period): a [`PeriodUpload`] with the
//!    counter and the bit array.
//!
//! The wire format is a compact big-endian layout over [`bytes`]; it
//! stands in for DSRC/IEEE 802.11p frames (the scheme is agnostic to the
//! radio layer). Every message round-trips through
//! `encode`/`decode`, property-tested below.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

use vcps_core::{BitArray, RsuId};

use crate::pki::Certificate;
use crate::{MacAddress, SimError};

/// Upper bound on the bit-array length a decoded upload may claim.
///
/// The scheme sizes arrays at `f̄ · n` rounded to a power of two; even
/// the heaviest workload in the paper (500k vehicles, f̄ = 30) stays
/// below 2^24 bits, so 2^32 (512 MiB dense) is generous while keeping
/// a malicious frame from demanding an absurd allocation.
///
/// Deliberately a `u64`, not a `usize`: the length field arrives as a
/// `u64` and must be bounds-checked *in that width* before any cast —
/// `1usize << 32` would wrap to 0 on a 32-bit target (rejecting every
/// frame), and casting a hostile length to `usize` first would let
/// `(1 << 32) + 64` masquerade as 64 there. Decoders compare against
/// this bound and only then convert via `upload_len_to_usize`.
const MAX_UPLOAD_BITS: u64 = 1 << 32;

/// The bound must mean 2^32 on every target; under the old
/// `usize`-typed constant this assertion is exactly what a 32-bit
/// build would have failed.
const _: () = assert!(MAX_UPLOAD_BITS == 4_294_967_296);

/// Validates a wire-claimed bit-array length against
/// [`MAX_UPLOAD_BITS`] (in `u64`, pre-cast) and converts it to `usize`,
/// rejecting zero-length claims uniformly across the dense/sparse and
/// owned/borrowed decoders.
fn upload_len_to_usize(len: u64) -> Result<usize, SimError> {
    if len == 0 || len > MAX_UPLOAD_BITS {
        return Err(SimError::MalformedMessage {
            reason: "invalid bit array length in upload",
        });
    }
    // In-range on every 64-bit target; on a 32-bit target a length
    // above usize::MAX cannot be materialized, so it is malformed too.
    usize::try_from(len).map_err(|_| SimError::MalformedMessage {
        reason: "invalid bit array length in upload",
    })
}

/// Upper bound on the inner-frame count a decoded [`BatchUpload`] may
/// claim, mirroring [`MAX_UPLOAD_BITS`]: one frame per RSU per period
/// means even a continental deployment stays far below 2^16, while a
/// hostile 9-byte header must not be able to promise four billion
/// frames and drive a quadratic validation loop.
const MAX_BATCH_FRAMES: usize = 1 << 16;

/// Upper bound on the shard count a decoded [`CheckpointSet`] may
/// claim. [`crate::ShardedServer`] deployments run single digits of
/// shards; 2^10 is generous while keeping a hostile header from
/// promising billions of inner checkpoints.
const MAX_CHECKPOINT_SHARDS: usize = 1 << 10;

const TAG_QUERY: u8 = 1;
const TAG_REPORT: u8 = 2;
const TAG_UPLOAD: u8 = 3;
const TAG_UPLOAD_SPARSE: u8 = 4;
const TAG_UPLOAD_SEQ: u8 = 5;
const TAG_BATCH: u8 = 6;
const TAG_CHECKPOINT: u8 = 7;
const TAG_CHECKPOINT_SET: u8 = 8;

/// FNV-1a 64 over a byte slice — the per-frame checksum inside a
/// [`BatchUpload`]. Hand-rolled (no new dependency) and byte-order
/// free; it only needs to catch channel corruption, not adversaries
/// (authenticity comes from the PKI layer).
fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The periodic broadcast an RSU sends to passing vehicles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Query {
    /// The RSU's identifier (RID).
    pub rsu: RsuId,
    /// The RSU's certificate from the trusted authority.
    pub certificate: Certificate,
    /// The RSU's bit-array size `m_x`, needed by the vehicle to reduce
    /// its logical position.
    pub array_size: u64,
}

impl Query {
    /// Serializes the query to its wire form.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(1 + 8 * 4);
        buf.put_u8(TAG_QUERY);
        buf.put_u64(self.rsu.0);
        buf.put_u64(self.certificate.rsu.0);
        buf.put_u64(self.certificate.tag);
        buf.put_u64(self.array_size);
        buf.freeze()
    }

    /// Parses a query from its wire form.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MalformedMessage`] on truncation or a wrong
    /// tag byte.
    pub fn decode(mut wire: &[u8]) -> Result<Self, SimError> {
        if wire.len() != 1 + 8 * 4 || wire[0] != TAG_QUERY {
            return Err(SimError::MalformedMessage {
                reason: "bad query frame",
            });
        }
        wire.advance(1);
        Ok(Self {
            rsu: RsuId(wire.get_u64()),
            certificate: Certificate {
                rsu: RsuId(wire.get_u64()),
                tag: wire.get_u64(),
            },
            array_size: wire.get_u64(),
        })
    }
}

/// A vehicle's answer: one bit index under a one-time MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitReport {
    /// The one-time link-layer address used for this single exchange.
    pub mac: MacAddress,
    /// The reported bit index `b_x ∈ [0, m_x)`.
    pub index: u64,
}

impl BitReport {
    /// Serializes the report to its wire form.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(1 + 6 + 8);
        buf.put_u8(TAG_REPORT);
        buf.put_slice(&self.mac.0);
        buf.put_u64(self.index);
        buf.freeze()
    }

    /// Parses a report from its wire form.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MalformedMessage`] on truncation or a wrong
    /// tag byte.
    pub fn decode(mut wire: &[u8]) -> Result<Self, SimError> {
        if wire.len() != 1 + 6 + 8 || wire[0] != TAG_REPORT {
            return Err(SimError::MalformedMessage {
                reason: "bad report frame",
            });
        }
        wire.advance(1);
        let mut mac = [0u8; 6];
        wire.copy_to_slice(&mut mac);
        Ok(Self {
            mac: MacAddress(mac),
            index: wire.get_u64(),
        })
    }
}

/// An RSU's end-of-period upload to the central server.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeriodUpload {
    /// The uploading RSU.
    pub rsu: RsuId,
    /// The passage counter `n_x`.
    pub counter: u64,
    /// The bit array `B_x`.
    pub bits: BitArray,
}

impl PeriodUpload {
    /// Serializes the upload to its wire form.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let words = self.bits.as_words();
        let mut buf = BytesMut::with_capacity(1 + 8 * 3 + 8 * words.len());
        buf.put_u8(TAG_UPLOAD);
        buf.put_u64(self.rsu.0);
        buf.put_u64(self.counter);
        buf.put_u64(self.bits.len() as u64);
        for &w in words {
            buf.put_u64(w);
        }
        buf.freeze()
    }

    /// Serializes the upload choosing the cheaper representation: the
    /// dense word form or a sorted set-bit index list — light-traffic
    /// RSUs with big arrays (sized for heavy siblings' history or sparse
    /// periods) save most of their uplink this way.
    ///
    /// [`PeriodUpload::decode`] accepts both forms transparently.
    #[must_use]
    pub fn encode_compact(&self) -> Bytes {
        let ones: Vec<usize> = self.bits.ones().collect();
        if ones.len() >= self.bits.as_words().len() {
            return self.encode();
        }
        let mut buf = BytesMut::with_capacity(1 + 8 * 4 + 8 * ones.len());
        buf.put_u8(TAG_UPLOAD_SPARSE);
        buf.put_u64(self.rsu.0);
        buf.put_u64(self.counter);
        buf.put_u64(self.bits.len() as u64);
        buf.put_u64(ones.len() as u64);
        for i in ones {
            buf.put_u64(i as u64);
        }
        buf.freeze()
    }

    /// Parses an upload from its wire form (dense or sparse frame).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MalformedMessage`] on truncation, a wrong tag
    /// byte, or an inconsistent word/index count.
    pub fn decode(wire: &[u8]) -> Result<Self, SimError> {
        match wire.first() {
            Some(&TAG_UPLOAD) => Self::decode_dense(wire),
            Some(&TAG_UPLOAD_SPARSE) => Self::decode_sparse(wire),
            _ => Err(SimError::MalformedMessage {
                reason: "bad upload frame",
            }),
        }
    }

    fn decode_dense(mut wire: &[u8]) -> Result<Self, SimError> {
        if wire.len() < 1 + 8 * 3 || wire[0] != TAG_UPLOAD {
            return Err(SimError::MalformedMessage {
                reason: "bad upload frame",
            });
        }
        wire.advance(1);
        let rsu = RsuId(wire.get_u64());
        let counter = wire.get_u64();
        let len = upload_len_to_usize(wire.get_u64())?;
        let expected_words = len.div_ceil(64);
        if wire.len() != expected_words * 8 {
            return Err(SimError::MalformedMessage {
                reason: "upload word count mismatch",
            });
        }
        let mut words = Vec::with_capacity(expected_words);
        for _ in 0..expected_words {
            words.push(wire.get_u64());
        }
        let bits = BitArray::from_words(words, len).map_err(|_| SimError::MalformedMessage {
            reason: "invalid bit array in upload",
        })?;
        Ok(Self { rsu, counter, bits })
    }

    fn decode_sparse(mut wire: &[u8]) -> Result<Self, SimError> {
        if wire.len() < 1 + 8 * 4 {
            return Err(SimError::MalformedMessage {
                reason: "truncated sparse upload",
            });
        }
        wire.advance(1);
        let rsu = RsuId(wire.get_u64());
        let counter = wire.get_u64();
        let raw_len = wire.get_u64();
        let ones = wire.get_u64() as usize;
        // Both `len` and `ones` come straight off the wire: compare
        // against the remaining byte count without multiplying (which
        // overflows on hostile `ones`), and bound `len` in u64 before
        // the cast and the backing allocation (a sparse frame never
        // makes sense for an array shorter than its own index list, and
        // a 33-byte frame must not be able to request a multi-terabyte
        // array).
        if !wire.len().is_multiple_of(8) || ones != wire.len() / 8 {
            return Err(SimError::MalformedMessage {
                reason: "sparse upload index count mismatch",
            });
        }
        let len = upload_len_to_usize(raw_len)?;
        if ones > len {
            return Err(SimError::MalformedMessage {
                reason: "invalid bit array length in upload",
            });
        }
        let mut bits = BitArray::try_new(len).map_err(|_| SimError::MalformedMessage {
            reason: "invalid bit array length in upload",
        })?;
        // The index list must be strictly increasing, as encode_compact
        // emits it: a duplicated or unsorted list means the frame was
        // corrupted or forged, and sparse decode kernels downstream
        // derive counts from list lengths — reject rather than silently
        // collapse duplicates into fewer set bits.
        let mut prev: Option<u64> = None;
        for _ in 0..ones {
            let index = wire.get_u64();
            if prev.is_some_and(|p| index <= p) {
                return Err(SimError::MalformedMessage {
                    reason: "sparse upload indices not strictly increasing",
                });
            }
            prev = Some(index);
            bits.try_set(index as usize)
                .map_err(|_| SimError::MalformedMessage {
                    reason: "sparse upload index out of range",
                })?;
        }
        Ok(Self { rsu, counter, bits })
    }
}

/// A [`PeriodUpload`] wrapped with a per-RSU sequence number for the
/// retransmission path (see [`crate::faults`]).
///
/// The sequence number lets the server distinguish a *re-sent* upload
/// (same `seq`, same content — ack it again, count nothing) from a
/// *stale* one (lower `seq` than already accepted — a late duplicate
/// from a previous period that must not clobber fresher state) and from
/// a *conflicting* one (same `seq`, different content — a corrupted or
/// equivocating sender).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SequencedUpload {
    /// Monotonically increasing per-RSU sequence number (the engine uses
    /// the period index).
    pub seq: u64,
    /// The wrapped upload.
    pub upload: PeriodUpload,
}

impl SequencedUpload {
    /// Serializes to the wire form: a sequence header followed by the
    /// compact upload frame.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let inner = self.upload.encode_compact();
        let mut buf = BytesMut::with_capacity(1 + 8 + inner.len());
        buf.put_u8(TAG_UPLOAD_SEQ);
        buf.put_u64(self.seq);
        buf.put_slice(&inner);
        buf.freeze()
    }

    /// Parses a sequenced upload from its wire form.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MalformedMessage`] on truncation, a wrong tag
    /// byte, or a malformed inner upload.
    pub fn decode(wire: &[u8]) -> Result<Self, SimError> {
        if wire.len() < 1 + 8 || wire[0] != TAG_UPLOAD_SEQ {
            return Err(SimError::MalformedMessage {
                reason: "bad sequenced upload frame",
            });
        }
        let mut header = &wire[1..9];
        let seq = header.get_u64();
        Ok(Self {
            seq,
            upload: PeriodUpload::decode(&wire[9..])?,
        })
    }
}

/// A batched end-of-period flush: every [`SequencedUpload`] an RSU
/// shard aggregated this period, in one wire frame.
///
/// The monolithic path sends one frame per upload; at hundreds of RSUs
/// per shard that is hundreds of radio/backhaul round trips per period.
/// A batch carries a length-prefixed vector of inner frames, each
/// guarded by an FNV-1a 64 checksum so a single flipped bit is
/// attributed to the frame it corrupted instead of desynchronizing the
/// rest of the batch parse.
///
/// Invariant: inner frames are sorted by `(rsu, seq)` and the keys are
/// strictly increasing (no duplicates). [`BatchUpload::new`] establishes
/// it, [`BatchUpload::decode`] enforces it — which is what lets the
/// mutation tests demand that a duplicated or reordered inner frame is
/// *rejected* rather than silently re-ingested.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchUpload {
    frames: Vec<SequencedUpload>,
}

impl BatchUpload {
    /// Builds a batch from inner frames, sorting them into canonical
    /// `(rsu, seq)` order.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MalformedMessage`] if two frames share a
    /// `(rsu, seq)` key (the batch would not round-trip: decode rejects
    /// non-strictly-increasing keys) or if the batch exceeds the
    /// `MAX_BATCH_FRAMES` wire bound.
    pub fn new(mut frames: Vec<SequencedUpload>) -> Result<Self, SimError> {
        if frames.len() > MAX_BATCH_FRAMES {
            return Err(SimError::MalformedMessage {
                reason: "batch frame count over limit",
            });
        }
        frames.sort_by_key(|f| (f.upload.rsu, f.seq));
        if frames
            .windows(2)
            .any(|w| (w[0].upload.rsu, w[0].seq) == (w[1].upload.rsu, w[1].seq))
        {
            return Err(SimError::MalformedMessage {
                reason: "duplicate (rsu, seq) in batch",
            });
        }
        Ok(Self { frames })
    }

    /// The inner frames in canonical `(rsu, seq)` order.
    #[must_use]
    pub fn frames(&self) -> &[SequencedUpload] {
        &self.frames
    }

    /// Consumes the batch, yielding the inner frames in canonical order.
    #[must_use]
    pub fn into_frames(self) -> Vec<SequencedUpload> {
        self.frames
    }

    /// Serializes to the wire form: a count header followed by one
    /// `length ‖ checksum ‖ frame` record per inner upload.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let inner: Vec<Bytes> = self.frames.iter().map(SequencedUpload::encode).collect();
        let total: usize = inner.iter().map(|f| 16 + f.len()).sum();
        let mut buf = BytesMut::with_capacity(1 + 8 + total);
        buf.put_u8(TAG_BATCH);
        buf.put_u64(self.frames.len() as u64);
        for frame in &inner {
            buf.put_u64(frame.len() as u64);
            buf.put_u64(fnv1a_64(frame));
            buf.put_slice(frame);
        }
        buf.freeze()
    }

    /// Parses a batch from its wire form.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MalformedMessage`] on truncation, a wrong tag
    /// byte, a frame count over `MAX_BATCH_FRAMES`, a record length
    /// exceeding the remaining bytes, a checksum mismatch, a malformed
    /// inner frame, inner keys out of canonical order, or trailing
    /// bytes.
    pub fn decode(mut wire: &[u8]) -> Result<Self, SimError> {
        if wire.len() < 1 + 8 || wire[0] != TAG_BATCH {
            return Err(SimError::MalformedMessage {
                reason: "bad batch frame",
            });
        }
        wire.advance(1);
        let count = wire.get_u64() as usize;
        if count > MAX_BATCH_FRAMES {
            return Err(SimError::MalformedMessage {
                reason: "batch frame count over limit",
            });
        }
        let mut frames = Vec::with_capacity(count.min(1024));
        let mut prev: Option<(RsuId, u64)> = None;
        for _ in 0..count {
            if wire.len() < 16 {
                return Err(SimError::MalformedMessage {
                    reason: "truncated batch record header",
                });
            }
            let frame_len = wire.get_u64() as usize;
            let checksum = wire.get_u64();
            // `frame_len` comes straight off the wire: compare against
            // the remaining byte count (no multiplication, no overflow)
            // before slicing.
            if frame_len > wire.len() {
                return Err(SimError::MalformedMessage {
                    reason: "batch record length exceeds frame",
                });
            }
            let frame = &wire[..frame_len];
            if fnv1a_64(frame) != checksum {
                return Err(SimError::MalformedMessage {
                    reason: "batch record checksum mismatch",
                });
            }
            let inner = SequencedUpload::decode(frame)?;
            let key = (inner.upload.rsu, inner.seq);
            if prev.is_some_and(|p| key <= p) {
                return Err(SimError::MalformedMessage {
                    reason: "batch records not strictly increasing",
                });
            }
            prev = Some(key);
            frames.push(inner);
            wire.advance(frame_len);
        }
        if !wire.is_empty() {
            return Err(SimError::MalformedMessage {
                reason: "trailing bytes after batch",
            });
        }
        Ok(Self { frames })
    }
}

/// Reads one big-endian `u64` from an exactly-8-byte slice.
fn be_u64(bytes: &[u8]) -> u64 {
    u64::from_be_bytes(bytes.try_into().expect("8-byte slice"))
}

/// Mask selecting the in-range bits of a bit array's final 64-bit word.
fn tail_mask(len: usize) -> u64 {
    match len % 64 {
        0 => u64::MAX,
        tail => (1u64 << tail) - 1,
    }
}

/// The payload section of a [`PeriodUploadRef`]: a borrowed slice of
/// the wire frame, dense words or sparse indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UploadPayload<'a> {
    /// Big-endian 64-bit words, exactly `bits_len.div_ceil(64)` of
    /// them. Bits beyond `bits_len` in the final word may be set on a
    /// hostile frame; accessors mask them, mirroring how
    /// [`BitArray::from_words`] masks the tail on the owned path.
    Dense(&'a [u8]),
    /// Big-endian 64-bit set-bit indices, strictly increasing and
    /// in-range (validated at decode).
    Sparse(&'a [u8]),
}

/// A [`PeriodUpload`] parsed as a borrowed view over its wire frame —
/// the zero-copy half of the ingest hot path (DESIGN.md §18).
///
/// [`decode_ref`](PeriodUploadRef::decode_ref) runs the *same*
/// validation as [`PeriodUpload::decode`] — a frame is accepted by one
/// iff it is accepted by the other — but allocates nothing: the dense
/// word block or sparse index list stays a `&[u8]` into the caller's
/// buffer, exposed through masking accessors. Materialize with
/// [`to_owned_upload`](PeriodUploadRef::to_owned_upload) only where the
/// server actually retains the upload (a fresh or conflicting receive);
/// duplicate detection runs allocation-free via
/// [`matches`](PeriodUploadRef::matches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeriodUploadRef<'a> {
    rsu: RsuId,
    counter: u64,
    bits_len: usize,
    payload: UploadPayload<'a>,
}

impl<'a> PeriodUploadRef<'a> {
    /// Parses an upload frame (dense or sparse) into a borrowed view,
    /// validating exactly what [`PeriodUpload::decode`] validates.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MalformedMessage`] on truncation, a wrong
    /// tag byte, an inconsistent word/index count, a zero or oversized
    /// bit-array length, or a non-strictly-increasing / out-of-range
    /// sparse index list — the same frames the owned decoder rejects.
    pub fn decode_ref(wire: &'a [u8]) -> Result<Self, SimError> {
        match wire.first() {
            Some(&TAG_UPLOAD) => Self::decode_dense_ref(wire),
            Some(&TAG_UPLOAD_SPARSE) => Self::decode_sparse_ref(wire),
            _ => Err(SimError::MalformedMessage {
                reason: "bad upload frame",
            }),
        }
    }

    fn decode_dense_ref(wire: &'a [u8]) -> Result<Self, SimError> {
        if wire.len() < 1 + 8 * 3 || wire[0] != TAG_UPLOAD {
            return Err(SimError::MalformedMessage {
                reason: "bad upload frame",
            });
        }
        let rsu = RsuId(be_u64(&wire[1..9]));
        let counter = be_u64(&wire[9..17]);
        // Zero and oversized length claims are rejected by the same
        // `upload_len_to_usize` guard the owned decoder runs, before
        // the claim participates in any size arithmetic.
        let len = upload_len_to_usize(be_u64(&wire[17..25]))?;
        let payload = &wire[25..];
        if payload.len() != len.div_ceil(64) * 8 {
            return Err(SimError::MalformedMessage {
                reason: "upload word count mismatch",
            });
        }
        Ok(Self {
            rsu,
            counter,
            bits_len: len,
            payload: UploadPayload::Dense(payload),
        })
    }

    fn decode_sparse_ref(wire: &'a [u8]) -> Result<Self, SimError> {
        if wire.len() < 1 + 8 * 4 {
            return Err(SimError::MalformedMessage {
                reason: "truncated sparse upload",
            });
        }
        let rsu = RsuId(be_u64(&wire[1..9]));
        let counter = be_u64(&wire[9..17]);
        let raw_len = be_u64(&wire[17..25]);
        let ones = be_u64(&wire[25..33]) as usize;
        let payload = &wire[33..];
        if !payload.len().is_multiple_of(8) || ones != payload.len() / 8 {
            return Err(SimError::MalformedMessage {
                reason: "sparse upload index count mismatch",
            });
        }
        // Zero and oversized length claims fall to the same
        // `upload_len_to_usize` guard the owned decoder runs.
        let len = upload_len_to_usize(raw_len)?;
        if ones > len {
            return Err(SimError::MalformedMessage {
                reason: "invalid bit array length in upload",
            });
        }
        let mut prev: Option<u64> = None;
        for chunk in payload.chunks_exact(8) {
            let index = be_u64(chunk);
            if prev.is_some_and(|p| index <= p) {
                return Err(SimError::MalformedMessage {
                    reason: "sparse upload indices not strictly increasing",
                });
            }
            prev = Some(index);
            if index as usize >= len {
                return Err(SimError::MalformedMessage {
                    reason: "sparse upload index out of range",
                });
            }
        }
        Ok(Self {
            rsu,
            counter,
            bits_len: len,
            payload: UploadPayload::Sparse(payload),
        })
    }

    /// The uploading RSU.
    #[must_use]
    pub fn rsu(&self) -> RsuId {
        self.rsu
    }

    /// The passage counter `n_x`.
    #[must_use]
    pub fn counter(&self) -> u64 {
        self.counter
    }

    /// The bit-array length in bits.
    #[must_use]
    pub fn bits_len(&self) -> usize {
        self.bits_len
    }

    /// `true` when the frame carried the sparse (index-list) encoding.
    #[must_use]
    pub fn is_sparse(&self) -> bool {
        matches!(self.payload, UploadPayload::Sparse(_))
    }

    /// Number of set bits — O(1) for sparse frames, one popcount pass
    /// over the borrowed words for dense frames. No allocation.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        match self.payload {
            UploadPayload::Sparse(p) => p.len() / 8,
            UploadPayload::Dense(_) => self
                .dense_words()
                .expect("dense payload")
                .map(|w| w.count_ones() as usize)
                .sum(),
        }
    }

    /// The dense payload as 64-bit words with the out-of-range tail
    /// masked (so they compare equal to [`BitArray::as_words`]), or
    /// `None` for a sparse frame.
    #[must_use]
    pub fn dense_words(&self) -> Option<impl Iterator<Item = u64> + 'a> {
        let UploadPayload::Dense(p) = self.payload else {
            return None;
        };
        let last = p.len() / 8 - 1;
        let mask = tail_mask(self.bits_len);
        Some(p.chunks_exact(8).enumerate().map(move |(i, chunk)| {
            let word = be_u64(chunk);
            if i == last {
                word & mask
            } else {
                word
            }
        }))
    }

    /// The sparse payload as strictly-increasing set-bit indices, or
    /// `None` for a dense frame.
    #[must_use]
    pub fn sparse_indices(&self) -> Option<impl Iterator<Item = u64> + 'a> {
        let UploadPayload::Sparse(p) = self.payload else {
            return None;
        };
        Some(p.chunks_exact(8).map(be_u64))
    }

    /// Allocation-free equality against an owned upload — the
    /// duplicate-detection comparison of the ingest hot path.
    /// Equivalent to `self.to_owned_upload() == *owned` without
    /// materializing anything.
    #[must_use]
    pub fn matches(&self, owned: &PeriodUpload) -> bool {
        if self.rsu != owned.rsu
            || self.counter != owned.counter
            || self.bits_len != owned.bits.len()
        {
            return false;
        }
        match self.payload {
            UploadPayload::Dense(_) => {
                self.dense_words()
                    .expect("dense payload")
                    .eq(owned.bits.as_words().iter().copied())
            }
            UploadPayload::Sparse(p) => {
                p.len() / 8 == owned.bits.count_ones()
                    && self
                        .sparse_indices()
                        .expect("sparse payload")
                        .eq(owned.bits.ones().map(|i| i as u64))
            }
        }
    }

    /// Materializes the owned upload (the only allocating operation on
    /// the view). Infallible: every invariant the owned constructors
    /// check was already validated at decode.
    #[must_use]
    pub fn to_owned_upload(&self) -> PeriodUpload {
        let bits = match self.payload {
            UploadPayload::Dense(_) => BitArray::from_words(
                self.dense_words().expect("dense payload").collect(),
                self.bits_len,
            )
            .expect("validated at decode"),
            UploadPayload::Sparse(_) => {
                let mut bits = BitArray::try_new(self.bits_len).expect("validated at decode");
                for index in self.sparse_indices().expect("sparse payload") {
                    bits.try_set(index as usize).expect("validated at decode");
                }
                bits
            }
        };
        PeriodUpload {
            rsu: self.rsu,
            counter: self.counter,
            bits,
        }
    }
}

/// A [`SequencedUpload`] parsed as a borrowed view over its wire frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SequencedUploadRef<'a> {
    seq: u64,
    upload: PeriodUploadRef<'a>,
}

impl<'a> SequencedUploadRef<'a> {
    /// Parses a sequenced upload into a borrowed view, validating
    /// exactly what [`SequencedUpload::decode`] validates.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MalformedMessage`] on truncation, a wrong
    /// tag byte, or a malformed inner upload.
    pub fn decode_ref(wire: &'a [u8]) -> Result<Self, SimError> {
        if wire.len() < 1 + 8 || wire[0] != TAG_UPLOAD_SEQ {
            return Err(SimError::MalformedMessage {
                reason: "bad sequenced upload frame",
            });
        }
        Ok(Self {
            seq: be_u64(&wire[1..9]),
            upload: PeriodUploadRef::decode_ref(&wire[9..])?,
        })
    }

    /// The per-RSU sequence number.
    #[must_use]
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The wrapped upload view.
    #[must_use]
    pub fn upload(&self) -> PeriodUploadRef<'a> {
        self.upload
    }

    /// Materializes the owned sequenced upload.
    #[must_use]
    pub fn to_owned_upload(&self) -> SequencedUpload {
        SequencedUpload {
            seq: self.seq,
            upload: self.upload.to_owned_upload(),
        }
    }
}

/// A [`BatchUpload`] parsed as a borrowed view: one pass of validation
/// (headers, per-record checksums, inner frames, canonical `(rsu, seq)`
/// order, no trailing bytes — byte-for-byte what
/// [`BatchUpload::decode`] enforces) with zero heap allocation, then
/// [`frames`](BatchUploadRef::frames) iterates the inner views straight
/// off the wire buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchUploadRef<'a> {
    /// The record section of the wire frame (everything after the tag
    /// and count header), fully validated at construction.
    records: &'a [u8],
    count: usize,
}

impl<'a> BatchUploadRef<'a> {
    /// Parses a batch frame into a borrowed view, validating exactly
    /// what [`BatchUpload::decode`] validates.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MalformedMessage`] on truncation, a wrong
    /// tag byte, a frame count over the wire bound, a record length
    /// exceeding the remaining bytes, a checksum mismatch, a malformed
    /// inner frame, inner keys out of canonical order, or trailing
    /// bytes.
    pub fn decode_ref(wire: &'a [u8]) -> Result<Self, SimError> {
        if wire.len() < 1 + 8 || wire[0] != TAG_BATCH {
            return Err(SimError::MalformedMessage {
                reason: "bad batch frame",
            });
        }
        let count = be_u64(&wire[1..9]) as usize;
        if count > MAX_BATCH_FRAMES {
            return Err(SimError::MalformedMessage {
                reason: "batch frame count over limit",
            });
        }
        let records = &wire[9..];
        let mut rest = records;
        let mut prev: Option<(RsuId, u64)> = None;
        for _ in 0..count {
            if rest.len() < 16 {
                return Err(SimError::MalformedMessage {
                    reason: "truncated batch record header",
                });
            }
            let frame_len = be_u64(&rest[..8]) as usize;
            let checksum = be_u64(&rest[8..16]);
            let body = &rest[16..];
            // `frame_len` comes straight off the wire: compare against
            // the remaining byte count (no multiplication, no overflow)
            // before slicing.
            if frame_len > body.len() {
                return Err(SimError::MalformedMessage {
                    reason: "batch record length exceeds frame",
                });
            }
            let frame = &body[..frame_len];
            if fnv1a_64(frame) != checksum {
                return Err(SimError::MalformedMessage {
                    reason: "batch record checksum mismatch",
                });
            }
            let inner = SequencedUploadRef::decode_ref(frame)?;
            let key = (inner.upload().rsu(), inner.seq());
            if prev.is_some_and(|p| key <= p) {
                return Err(SimError::MalformedMessage {
                    reason: "batch records not strictly increasing",
                });
            }
            prev = Some(key);
            rest = &body[frame_len..];
        }
        if !rest.is_empty() {
            return Err(SimError::MalformedMessage {
                reason: "trailing bytes after batch",
            });
        }
        Ok(Self { records, count })
    }

    /// Number of inner frames.
    #[must_use]
    pub fn len(&self) -> usize {
        self.count
    }

    /// `true` when the batch carries no frames.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Iterates the inner frames as borrowed views, in canonical
    /// `(rsu, seq)` order, allocating nothing. Each step re-parses one
    /// record from the validated buffer (checksums are not re-verified;
    /// they already passed at decode).
    #[must_use]
    pub fn frames(&self) -> BatchFrames<'a> {
        BatchFrames {
            rest: self.records,
            remaining: self.count,
        }
    }

    /// Materializes the owned batch.
    #[must_use]
    pub fn to_owned_batch(&self) -> BatchUpload {
        BatchUpload {
            frames: self.frames().map(|f| f.to_owned_upload()).collect(),
        }
    }
}

/// Iterator over a validated [`BatchUploadRef`]'s inner frames.
#[derive(Debug, Clone)]
pub struct BatchFrames<'a> {
    rest: &'a [u8],
    remaining: usize,
}

impl<'a> Iterator for BatchFrames<'a> {
    type Item = SequencedUploadRef<'a>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let frame_len = be_u64(&self.rest[..8]) as usize;
        let body = &self.rest[16..];
        let frame = &body[..frame_len];
        self.rest = &body[frame_len..];
        Some(SequencedUploadRef::decode_ref(frame).expect("validated at batch decode"))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for BatchFrames<'_> {}

/// A serialized snapshot of one [`crate::CentralServer`]'s durable
/// state (wire tag 7): the history smoothing factor, per-RSU historical
/// averages, per-RSU accepted sequence numbers, and the accumulated
/// period uploads — everything `receive`/`finish_period` semantics
/// depend on. Derived state (decode caches, observability handles) is
/// deliberately absent; it is rebuilt on restore.
///
/// The scheme itself is *not* serialized: a checkpoint is only
/// meaningful to the deployment that wrote it, and the restoring caller
/// supplies the scheme (see `CentralServer::restore_from_checkpoint`).
///
/// Invariant: each section's RSU keys are strictly increasing.
/// [`crate::CentralServer::checkpoint`] establishes it (the fields are
/// `BTreeMap`-ordered), [`ServerCheckpoint::decode`] enforces it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerCheckpoint {
    /// The [`vcps_core::VolumeHistory`] smoothing factor `α ∈ (0, 1]`.
    pub alpha: f64,
    /// Per-RSU historical averages, strictly increasing by RSU.
    pub history: Vec<(RsuId, f64)>,
    /// Per-RSU accepted sequence numbers, strictly increasing by RSU.
    pub seqs: Vec<(RsuId, u64)>,
    /// Accumulated uploads for the open period, strictly increasing by
    /// RSU (a `BTreeMap` image: at most one upload per RSU).
    pub uploads: Vec<PeriodUpload>,
}

impl ServerCheckpoint {
    /// Serializes to the wire form: the alpha bits, then three
    /// length-prefixed sections (history, sequence numbers, uploads);
    /// `f64` values travel as their IEEE-754 bit patterns so restore is
    /// exact, and uploads as length-prefixed compact frames.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let frames: Vec<Bytes> = self
            .uploads
            .iter()
            .map(PeriodUpload::encode_compact)
            .collect();
        let upload_bytes: usize = frames.iter().map(|f| 8 + f.len()).sum();
        let mut buf = BytesMut::with_capacity(
            1 + 8 * 4 + 16 * (self.history.len() + self.seqs.len()) + upload_bytes,
        );
        buf.put_u8(TAG_CHECKPOINT);
        buf.put_u64(self.alpha.to_bits());
        buf.put_u64(self.history.len() as u64);
        for &(rsu, avg) in &self.history {
            buf.put_u64(rsu.0);
            buf.put_u64(avg.to_bits());
        }
        buf.put_u64(self.seqs.len() as u64);
        for &(rsu, seq) in &self.seqs {
            buf.put_u64(rsu.0);
            buf.put_u64(seq);
        }
        buf.put_u64(frames.len() as u64);
        for frame in &frames {
            buf.put_u64(frame.len() as u64);
            buf.put_slice(frame);
        }
        buf.freeze()
    }

    /// Parses a checkpoint from its wire form.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MalformedMessage`] on truncation, a wrong
    /// tag byte, a non-finite or out-of-range alpha, a section count
    /// over `MAX_BATCH_FRAMES`, RSU keys out of strictly increasing
    /// order, a non-finite average, a malformed inner upload, or
    /// trailing bytes. Never panics: every length is validated against
    /// the remaining byte count before it is trusted.
    pub fn decode(mut wire: &[u8]) -> Result<Self, SimError> {
        if wire.len() < 1 + 8 * 2 || wire[0] != TAG_CHECKPOINT {
            return Err(SimError::MalformedMessage {
                reason: "bad checkpoint frame",
            });
        }
        wire.advance(1);
        let alpha = f64::from_bits(wire.get_u64());
        if !(alpha > 0.0 && alpha <= 1.0) {
            return Err(SimError::MalformedMessage {
                reason: "checkpoint alpha outside (0, 1]",
            });
        }
        let read_count = |wire: &mut &[u8], reason: &'static str| -> Result<usize, SimError> {
            if wire.len() < 8 {
                return Err(SimError::MalformedMessage { reason });
            }
            let count = wire.get_u64() as usize;
            if count > MAX_BATCH_FRAMES {
                return Err(SimError::MalformedMessage {
                    reason: "checkpoint section count over limit",
                });
            }
            Ok(count)
        };
        let history_count = read_count(&mut wire, "truncated checkpoint history")?;
        let mut history = Vec::with_capacity(history_count.min(1024));
        let mut prev: Option<RsuId> = None;
        for _ in 0..history_count {
            if wire.len() < 16 {
                return Err(SimError::MalformedMessage {
                    reason: "truncated checkpoint history",
                });
            }
            let rsu = RsuId(wire.get_u64());
            let avg = f64::from_bits(wire.get_u64());
            if prev.is_some_and(|p| rsu <= p) {
                return Err(SimError::MalformedMessage {
                    reason: "checkpoint history not strictly increasing",
                });
            }
            if !avg.is_finite() || avg < 0.0 {
                return Err(SimError::MalformedMessage {
                    reason: "checkpoint history average not finite",
                });
            }
            prev = Some(rsu);
            history.push((rsu, avg));
        }
        let seq_count = read_count(&mut wire, "truncated checkpoint sequences")?;
        let mut seqs = Vec::with_capacity(seq_count.min(1024));
        let mut prev: Option<RsuId> = None;
        for _ in 0..seq_count {
            if wire.len() < 16 {
                return Err(SimError::MalformedMessage {
                    reason: "truncated checkpoint sequences",
                });
            }
            let rsu = RsuId(wire.get_u64());
            let seq = wire.get_u64();
            if prev.is_some_and(|p| rsu <= p) {
                return Err(SimError::MalformedMessage {
                    reason: "checkpoint sequences not strictly increasing",
                });
            }
            prev = Some(rsu);
            seqs.push((rsu, seq));
        }
        let upload_count = read_count(&mut wire, "truncated checkpoint uploads")?;
        let mut uploads = Vec::with_capacity(upload_count.min(1024));
        let mut prev: Option<RsuId> = None;
        for _ in 0..upload_count {
            if wire.len() < 8 {
                return Err(SimError::MalformedMessage {
                    reason: "truncated checkpoint uploads",
                });
            }
            let frame_len = wire.get_u64() as usize;
            // Straight off the wire: compare against the remaining byte
            // count (no multiplication, no overflow) before slicing.
            if frame_len > wire.len() {
                return Err(SimError::MalformedMessage {
                    reason: "checkpoint upload length exceeds frame",
                });
            }
            let upload = PeriodUpload::decode(&wire[..frame_len])?;
            if prev.is_some_and(|p| upload.rsu <= p) {
                return Err(SimError::MalformedMessage {
                    reason: "checkpoint uploads not strictly increasing",
                });
            }
            prev = Some(upload.rsu);
            uploads.push(upload);
            wire.advance(frame_len);
        }
        if !wire.is_empty() {
            return Err(SimError::MalformedMessage {
                reason: "trailing bytes after checkpoint",
            });
        }
        Ok(Self {
            alpha,
            history,
            seqs,
            uploads,
        })
    }
}

/// A whole-deployment snapshot (wire tag 8): one [`ServerCheckpoint`]
/// per shard plus the WAL record count the snapshot covers, so recovery
/// knows which log suffix still needs replaying.
///
/// This is the payload `vcps-durable`'s checkpoint store persists (the
/// store adds its own header and checksum; see `DurableServer`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointSet {
    /// How many WAL records had been applied when the snapshot was
    /// taken: recovery replays the log from this index.
    pub frames_applied: u64,
    /// Per-shard snapshots, in shard order. The shard count is part of
    /// the deployment's identity: restoring under a different count
    /// would re-route RSUs across shards.
    pub shards: Vec<ServerCheckpoint>,
}

impl CheckpointSet {
    /// Serializes to the wire form: the applied-record count, then one
    /// `length ‖ checkpoint frame` record per shard.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let inner: Vec<Bytes> = self.shards.iter().map(ServerCheckpoint::encode).collect();
        let total: usize = inner.iter().map(|f| 8 + f.len()).sum();
        let mut buf = BytesMut::with_capacity(1 + 8 * 2 + total);
        buf.put_u8(TAG_CHECKPOINT_SET);
        buf.put_u64(self.frames_applied);
        buf.put_u64(self.shards.len() as u64);
        for frame in &inner {
            buf.put_u64(frame.len() as u64);
            buf.put_slice(frame);
        }
        buf.freeze()
    }

    /// Parses a checkpoint set from its wire form.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MalformedMessage`] on truncation, a wrong
    /// tag byte, a shard count of zero or over `MAX_CHECKPOINT_SHARDS`,
    /// a malformed inner checkpoint, or trailing bytes.
    pub fn decode(mut wire: &[u8]) -> Result<Self, SimError> {
        if wire.len() < 1 + 8 * 2 || wire[0] != TAG_CHECKPOINT_SET {
            return Err(SimError::MalformedMessage {
                reason: "bad checkpoint set frame",
            });
        }
        wire.advance(1);
        let frames_applied = wire.get_u64();
        let count = wire.get_u64() as usize;
        if count == 0 || count > MAX_CHECKPOINT_SHARDS {
            return Err(SimError::MalformedMessage {
                reason: "invalid checkpoint set shard count",
            });
        }
        let mut shards = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            if wire.len() < 8 {
                return Err(SimError::MalformedMessage {
                    reason: "truncated checkpoint set record",
                });
            }
            let frame_len = wire.get_u64() as usize;
            if frame_len > wire.len() {
                return Err(SimError::MalformedMessage {
                    reason: "checkpoint set record length exceeds frame",
                });
            }
            shards.push(ServerCheckpoint::decode(&wire[..frame_len])?);
            wire.advance(frame_len);
        }
        if !wire.is_empty() {
            return Err(SimError::MalformedMessage {
                reason: "trailing bytes after checkpoint set",
            });
        }
        Ok(Self {
            frames_applied,
            shards,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pki::TrustedAuthority;

    fn query() -> Query {
        let ca = TrustedAuthority::new(9);
        Query {
            rsu: RsuId(12),
            certificate: ca.issue(RsuId(12)),
            array_size: 1 << 14,
        }
    }

    #[test]
    fn query_roundtrip() {
        let q = query();
        assert_eq!(Query::decode(&q.encode()).unwrap(), q);
    }

    #[test]
    fn query_rejects_truncation_and_bad_tag() {
        let wire = query().encode();
        assert!(Query::decode(&wire[..wire.len() - 1]).is_err());
        let mut bad = wire.to_vec();
        bad[0] = TAG_REPORT;
        assert!(Query::decode(&bad).is_err());
    }

    #[test]
    fn report_roundtrip() {
        let r = BitReport {
            mac: MacAddress([2, 3, 4, 5, 6, 7]),
            index: 777,
        };
        assert_eq!(BitReport::decode(&r.encode()).unwrap(), r);
    }

    #[test]
    fn report_contains_no_identifier_fields() {
        // The privacy invariant: a report is exactly MAC + index, 15
        // bytes, nothing else.
        let r = BitReport {
            mac: MacAddress([2, 0, 0, 0, 0, 0]),
            index: 1,
        };
        assert_eq!(r.encode().len(), 15);
    }

    #[test]
    fn upload_roundtrip() {
        let mut bits = BitArray::new(100);
        bits.set(0);
        bits.set(99);
        let u = PeriodUpload {
            rsu: RsuId(5),
            counter: 12_345,
            bits,
        };
        assert_eq!(PeriodUpload::decode(&u.encode()).unwrap(), u);
    }

    #[test]
    fn upload_rejects_word_count_mismatch() {
        let u = PeriodUpload {
            rsu: RsuId(5),
            counter: 1,
            bits: BitArray::new(64),
        };
        let mut wire = u.encode().to_vec();
        wire.extend_from_slice(&[0u8; 8]);
        assert!(PeriodUpload::decode(&wire).is_err());
    }

    #[test]
    fn compact_upload_roundtrips_and_saves_bytes() {
        // A light RSU: 5 ones in a 2^16-bit array.
        let mut bits = BitArray::new(1 << 16);
        for i in [3usize, 999, 10_000, 40_000, 65_535] {
            bits.set(i);
        }
        let u = PeriodUpload {
            rsu: RsuId(9),
            counter: 5,
            bits,
        };
        let dense = u.encode();
        let compact = u.encode_compact();
        assert!(compact.len() * 100 < dense.len(), "5 indices vs 8 KiB");
        assert_eq!(PeriodUpload::decode(&compact).unwrap(), u);
    }

    #[test]
    fn compact_upload_falls_back_to_dense_when_full() {
        let mut bits = BitArray::new(128);
        for i in 0..100 {
            bits.set(i);
        }
        let u = PeriodUpload {
            rsu: RsuId(9),
            counter: 100,
            bits,
        };
        assert_eq!(u.encode_compact(), u.encode());
    }

    #[test]
    fn sparse_upload_rejects_corruption() {
        // 128 bits / 1 one: strictly cheaper sparse, so encode_compact
        // emits the sparse frame.
        let mut bits = BitArray::new(128);
        bits.set(1);
        let u = PeriodUpload {
            rsu: RsuId(1),
            counter: 1,
            bits,
        };
        let wire = u.encode_compact().to_vec();
        assert!(PeriodUpload::decode(&wire[..wire.len() - 1]).is_err());
        // Corrupt the index to be out of range.
        let mut bad = wire.clone();
        let n = bad.len();
        bad[n - 1] = 200;
        assert!(PeriodUpload::decode(&bad).is_err());
    }

    #[test]
    fn sparse_upload_rejects_duplicate_and_unsorted_indices() {
        // Three ones in 256 bits: sparse frame with indices 1, 9, 200.
        let mut bits = BitArray::new(256);
        for i in [1usize, 9, 200] {
            bits.set(i);
        }
        let u = PeriodUpload {
            rsu: RsuId(1),
            counter: 3,
            bits,
        };
        let wire = u.encode_compact().to_vec();
        assert_eq!(PeriodUpload::decode(&wire).unwrap(), u);
        let n = wire.len();
        // Duplicate: overwrite the last index (200) with the middle one
        // (9). In-range, so only the monotonicity check can catch it.
        let mut dup = wire.clone();
        dup.copy_within(n - 16..n - 8, n - 8);
        assert!(PeriodUpload::decode(&dup).is_err());
        // Unsorted: swap the first two indices (9, 1, 200).
        let mut unsorted = wire.clone();
        let base = wire.len() - 3 * 8;
        unsorted[base..base + 8].copy_from_slice(&wire[n - 16..n - 8]);
        unsorted[base + 8..base + 16].copy_from_slice(&wire[base..base + 8]);
        assert!(PeriodUpload::decode(&unsorted).is_err());
    }

    #[test]
    fn sequenced_upload_roundtrips_and_rejects_corruption() {
        let mut bits = BitArray::new(256);
        bits.set(17);
        let su = SequencedUpload {
            seq: 42,
            upload: PeriodUpload {
                rsu: RsuId(3),
                counter: 9,
                bits,
            },
        };
        let wire = su.encode();
        assert_eq!(SequencedUpload::decode(&wire).unwrap(), su);
        assert!(SequencedUpload::decode(&wire[..wire.len() - 1]).is_err());
        assert!(SequencedUpload::decode(&wire[..5]).is_err());
        let mut bad = wire.to_vec();
        bad[0] = TAG_UPLOAD;
        assert!(SequencedUpload::decode(&bad).is_err());
    }

    #[test]
    fn dense_upload_rejects_absurd_length_claim() {
        // A frame claiming more bits than MAX_UPLOAD_BITS must be
        // rejected before any word-count arithmetic.
        let mut wire = BytesMut::new();
        wire.put_u8(TAG_UPLOAD);
        wire.put_u64(1); // rsu
        wire.put_u64(1); // counter
        wire.put_u64(u64::MAX); // absurd bit length
        assert!(PeriodUpload::decode(&wire.freeze()).is_err());
    }

    /// The length bound is compared in `u64` *before* any cast: a claim
    /// just past 2^32 — which truncates to a small, plausible value on
    /// a 32-bit `usize` — must be rejected on every target, by all four
    /// decoder variants. (Under the old `usize`-typed bound, a 32-bit
    /// build computed `1 << 32 == 0` and rejected every frame instead.)
    #[test]
    fn upload_length_bound_is_checked_pre_cast() {
        let dense = |claim: u64| {
            let mut wire = BytesMut::new();
            wire.put_u8(TAG_UPLOAD);
            wire.put_u64(1); // rsu
            wire.put_u64(1); // counter
            wire.put_u64(claim);
            wire.put_u64(0); // one payload word, as a truncated claim implies
            wire.freeze()
        };
        let sparse = |claim: u64| {
            let mut wire = BytesMut::new();
            wire.put_u8(TAG_UPLOAD_SPARSE);
            wire.put_u64(1); // rsu
            wire.put_u64(1); // counter
            wire.put_u64(claim);
            wire.put_u64(1); // one index
            wire.put_u64(3);
            wire.freeze()
        };
        // (1 << 32) + 64 as a 32-bit usize would be 64 — consistent
        // with both assembled payloads. The u64 comparison rejects it.
        for claim in [MAX_UPLOAD_BITS + 64, 1 << 40, u64::MAX] {
            for wire in [dense(claim), sparse(claim)] {
                assert!(
                    matches!(
                        PeriodUpload::decode(&wire),
                        Err(SimError::MalformedMessage {
                            reason: "invalid bit array length in upload"
                        })
                    ),
                    "owned, claim {claim}"
                );
                assert!(
                    matches!(
                        PeriodUploadRef::decode_ref(&wire),
                        Err(SimError::MalformedMessage {
                            reason: "invalid bit array length in upload"
                        })
                    ),
                    "borrowed, claim {claim}"
                );
            }
        }
    }

    /// Zero-length claims are rejected with the *same* typed reason by
    /// dense/sparse × owned/borrowed — the unified `upload_len_to_usize`
    /// guard, rather than four divergent downstream failures.
    #[test]
    fn zero_length_rejection_is_unified_across_decoders() {
        for tag in [TAG_UPLOAD, TAG_UPLOAD_SPARSE] {
            let mut wire = BytesMut::new();
            wire.put_u8(tag);
            wire.put_u64(1); // rsu
            wire.put_u64(1); // counter
            wire.put_u64(0); // zero bit length
            if tag == TAG_UPLOAD_SPARSE {
                wire.put_u64(0); // zero indices
            }
            let wire = wire.freeze();
            for verdict in [
                PeriodUpload::decode(&wire).map(|_| ()),
                PeriodUploadRef::decode_ref(&wire).map(|_| ()),
            ] {
                assert!(
                    matches!(
                        verdict,
                        Err(SimError::MalformedMessage {
                            reason: "invalid bit array length in upload"
                        })
                    ),
                    "tag {tag}: {verdict:?}"
                );
            }
        }
    }

    #[test]
    fn upload_roundtrip_various_sizes() {
        for len in [2usize, 63, 64, 65, 128, 1000, 1 << 12] {
            let mut bits = BitArray::new(len);
            bits.set(len - 1);
            let u = PeriodUpload {
                rsu: RsuId(1),
                counter: len as u64,
                bits,
            };
            assert_eq!(PeriodUpload::decode(&u.encode()).unwrap(), u, "len {len}");
        }
    }

    fn sequenced(rsu: u64, seq: u64, ones: &[usize]) -> SequencedUpload {
        let mut bits = BitArray::new(256);
        for &i in ones {
            bits.set(i);
        }
        SequencedUpload {
            seq,
            upload: PeriodUpload {
                rsu: RsuId(rsu),
                counter: ones.len() as u64,
                bits,
            },
        }
    }

    #[test]
    fn batch_roundtrips_and_canonicalizes_order() {
        // Construct out of order; the batch sorts by (rsu, seq).
        let b = BatchUpload::new(vec![
            sequenced(7, 0, &[1, 2]),
            sequenced(3, 1, &[9]),
            sequenced(3, 0, &[4, 200]),
        ])
        .unwrap();
        let keys: Vec<(u64, u64)> = b.frames().iter().map(|f| (f.upload.rsu.0, f.seq)).collect();
        assert_eq!(keys, [(3, 0), (3, 1), (7, 0)]);
        assert_eq!(BatchUpload::decode(&b.encode()).unwrap(), b);
    }

    #[test]
    fn empty_batch_roundtrips() {
        let b = BatchUpload::new(Vec::new()).unwrap();
        assert_eq!(b.encode().len(), 9);
        assert_eq!(BatchUpload::decode(&b.encode()).unwrap(), b);
    }

    #[test]
    fn batch_constructor_rejects_duplicate_keys() {
        assert!(BatchUpload::new(vec![sequenced(3, 0, &[1]), sequenced(3, 0, &[2])]).is_err());
    }

    #[test]
    fn batch_rejects_truncation_wrong_tag_and_trailing_bytes() {
        let b = BatchUpload::new(vec![sequenced(1, 0, &[5]), sequenced(2, 0, &[6])]).unwrap();
        let wire = b.encode();
        for cut in 1..wire.len() {
            assert!(BatchUpload::decode(&wire[..cut]).is_err(), "cut {cut}");
        }
        let mut bad = wire.to_vec();
        bad[0] = TAG_UPLOAD_SEQ;
        assert!(BatchUpload::decode(&bad).is_err());
        let mut trailing = wire.to_vec();
        trailing.push(0);
        assert!(BatchUpload::decode(&trailing).is_err());
    }

    #[test]
    fn batch_rejects_absurd_count_claim() {
        let mut wire = BytesMut::new();
        wire.put_u8(TAG_BATCH);
        wire.put_u64(u64::MAX);
        assert!(matches!(
            BatchUpload::decode(&wire.freeze()),
            Err(SimError::MalformedMessage {
                reason: "batch frame count over limit"
            })
        ));
    }

    #[test]
    fn batch_rejects_checksum_mismatch() {
        let b = BatchUpload::new(vec![sequenced(1, 0, &[5])]).unwrap();
        let mut wire = b.encode().to_vec();
        // Flip a bit inside the inner frame body (past the 25-byte
        // batch + record headers): the checksum must catch it.
        let n = wire.len();
        wire[n - 1] ^= 0x01;
        assert!(matches!(
            BatchUpload::decode(&wire),
            Err(SimError::MalformedMessage {
                reason: "batch record checksum mismatch"
            })
        ));
    }

    #[test]
    fn batch_rejects_duplicated_and_reordered_records() {
        let a = sequenced(1, 0, &[5]);
        let b = sequenced(2, 0, &[6]);
        // Hand-assemble wires so both records are individually valid —
        // only the ordering invariant can reject them.
        let assemble = |frames: &[&SequencedUpload]| {
            let mut buf = BytesMut::new();
            buf.put_u8(TAG_BATCH);
            buf.put_u64(frames.len() as u64);
            for f in frames {
                let inner = f.encode();
                buf.put_u64(inner.len() as u64);
                buf.put_u64(fnv1a_64(&inner));
                buf.put_slice(&inner);
            }
            buf.freeze()
        };
        assert!(BatchUpload::decode(&assemble(&[&a, &b])).is_ok());
        assert!(matches!(
            BatchUpload::decode(&assemble(&[&a, &a])),
            Err(SimError::MalformedMessage {
                reason: "batch records not strictly increasing"
            })
        ));
        assert!(matches!(
            BatchUpload::decode(&assemble(&[&b, &a])),
            Err(SimError::MalformedMessage {
                reason: "batch records not strictly increasing"
            })
        ));
    }

    #[test]
    fn borrowed_views_agree_with_owned_decode_on_valid_frames() {
        let mut bits = BitArray::new(1024);
        for i in [0usize, 63, 64, 999] {
            bits.set(i);
        }
        let upload = PeriodUpload {
            rsu: RsuId(5),
            counter: 77,
            bits,
        };
        for wire in [upload.encode(), upload.encode_compact()] {
            let view = PeriodUploadRef::decode_ref(&wire).unwrap();
            assert_eq!(view.rsu(), upload.rsu);
            assert_eq!(view.counter(), upload.counter);
            assert_eq!(view.bits_len(), upload.bits.len());
            assert_eq!(view.count_ones(), upload.bits.count_ones());
            assert!(view.matches(&upload));
            assert_eq!(view.to_owned_upload(), upload);
        }
        let dense_wire = upload.encode();
        let dense = PeriodUploadRef::decode_ref(&dense_wire).unwrap();
        assert!(!dense.is_sparse());
        let words: Vec<u64> = dense.dense_words().unwrap().collect();
        assert_eq!(words, upload.bits.as_words());
        assert!(dense.sparse_indices().is_none());
        let sparse_wire = upload.encode_compact();
        let sparse = PeriodUploadRef::decode_ref(&sparse_wire).unwrap();
        assert!(sparse.is_sparse());
        let indices: Vec<u64> = sparse.sparse_indices().unwrap().collect();
        assert_eq!(indices, vec![0, 63, 64, 999]);
        assert!(sparse.dense_words().is_none());

        // A differing counter, rsu, or payload must not match.
        let mut other = upload.clone();
        other.counter += 1;
        assert!(!dense.matches(&other));
        let mut other = upload.clone();
        other.bits.set(1);
        assert!(!dense.matches(&other));
        assert!(!sparse.matches(&other));
    }

    /// A hostile dense frame with garbage bits beyond `len` in its
    /// final word is *accepted* by the owned decoder (which masks the
    /// tail inside `BitArray::from_words`); the borrowed view must
    /// agree — accept, and mask in every accessor.
    #[test]
    fn borrowed_dense_masks_hostile_tail_bits_like_owned() {
        let mut bits = BitArray::new(100);
        bits.set(99);
        let upload = PeriodUpload {
            rsu: RsuId(2),
            counter: 1,
            bits,
        };
        let mut wire = upload.encode().to_vec();
        // Set a bit at logical position 107 (> len) in the final word.
        let last_word = wire.len() - 8;
        let owned = PeriodUpload::decode(&wire).unwrap();
        let tainted_word = be_u64(&wire[last_word..]) | (1 << 43);
        wire[last_word..].copy_from_slice(&tainted_word.to_be_bytes());
        let tainted = PeriodUpload::decode(&wire).unwrap();
        assert_eq!(tainted, owned, "owned decode masks the tail");
        let view = PeriodUploadRef::decode_ref(&wire).unwrap();
        assert_eq!(view.count_ones(), 1);
        assert_eq!(
            view.dense_words().unwrap().collect::<Vec<u64>>(),
            owned.bits.as_words()
        );
        assert!(view.matches(&owned));
        assert_eq!(view.to_owned_upload(), owned);
    }

    /// Owned and borrowed decoders accept and reject exactly the same
    /// frames across the module's rejection taxonomy.
    #[test]
    fn borrowed_views_reject_whatever_owned_rejects() {
        let good = sequenced(3, 9, &[1, 7, 250]);
        let upload_wires = [good.upload.encode(), good.upload.encode_compact()];
        for wire in &upload_wires {
            for cut in 0..wire.len() {
                assert_eq!(
                    PeriodUpload::decode(&wire[..cut]).is_ok(),
                    PeriodUploadRef::decode_ref(&wire[..cut]).is_ok(),
                    "truncation at {cut}"
                );
            }
            let mut bad = wire.to_vec();
            bad[0] = TAG_BATCH;
            assert!(PeriodUploadRef::decode_ref(&bad).is_err());
        }
        // Zero-length arrays: rejected by both, dense and sparse.
        for tag in [TAG_UPLOAD, TAG_UPLOAD_SPARSE] {
            let mut wire = BytesMut::new();
            wire.put_u8(tag);
            wire.put_u64(1); // rsu
            wire.put_u64(1); // counter
            wire.put_u64(0); // zero bit length
            if tag == TAG_UPLOAD_SPARSE {
                wire.put_u64(0); // zero indices
            }
            let wire = wire.freeze();
            assert!(PeriodUpload::decode(&wire).is_err());
            assert!(PeriodUploadRef::decode_ref(&wire).is_err());
        }
        // Duplicated and out-of-range sparse indices.
        let assemble_sparse = |indices: &[u64]| {
            let mut wire = BytesMut::new();
            wire.put_u8(TAG_UPLOAD_SPARSE);
            wire.put_u64(1);
            wire.put_u64(1);
            wire.put_u64(64);
            wire.put_u64(indices.len() as u64);
            for &i in indices {
                wire.put_u64(i);
            }
            wire.freeze()
        };
        for indices in [&[5u64, 5][..], &[9, 3], &[64], &[2, 70]] {
            let wire = assemble_sparse(indices);
            assert!(PeriodUpload::decode(&wire).is_err(), "{indices:?}");
            assert!(PeriodUploadRef::decode_ref(&wire).is_err(), "{indices:?}");
        }
        assert!(PeriodUploadRef::decode_ref(&assemble_sparse(&[3, 8, 63])).is_ok());

        // Batch taxonomy: truncation, checksum flip, duplicate record.
        let batch = BatchUpload::new(vec![sequenced(1, 0, &[5]), good.clone()]).unwrap();
        let wire = batch.encode();
        assert!(BatchUploadRef::decode_ref(&wire).is_ok());
        for cut in 0..wire.len() {
            assert_eq!(
                BatchUpload::decode(&wire[..cut]).is_ok(),
                BatchUploadRef::decode_ref(&wire[..cut]).is_ok(),
                "batch truncation at {cut}"
            );
        }
        for byte in 0..wire.len() {
            let mut bad = wire.to_vec();
            bad[byte] ^= 0x10;
            assert_eq!(
                BatchUpload::decode(&bad).is_ok(),
                BatchUploadRef::decode_ref(&bad).is_ok(),
                "batch bit flip at byte {byte}"
            );
        }
        let mut trailing = wire.to_vec();
        trailing.push(0);
        assert!(BatchUploadRef::decode_ref(&trailing).is_err());
    }

    #[test]
    fn batch_frames_iterator_yields_canonical_views() {
        let frames = vec![
            sequenced(7, 0, &[1, 2]),
            sequenced(3, 1, &[9]),
            sequenced(3, 0, &[4, 200]),
        ];
        let batch = BatchUpload::new(frames).unwrap();
        let wire = batch.encode();
        let view = BatchUploadRef::decode_ref(&wire).unwrap();
        assert_eq!(view.len(), 3);
        assert!(!view.is_empty());
        assert_eq!(view.frames().len(), 3);
        let keys: Vec<(u64, u64)> = view
            .frames()
            .map(|f| (f.upload().rsu().0, f.seq()))
            .collect();
        assert_eq!(keys, [(3, 0), (3, 1), (7, 0)]);
        for (borrowed, owned) in view.frames().zip(batch.frames()) {
            assert_eq!(borrowed.seq(), owned.seq);
            assert!(borrowed.upload().matches(&owned.upload));
            assert_eq!(borrowed.to_owned_upload(), *owned);
        }
        assert_eq!(view.to_owned_batch(), batch);

        let empty_wire = BatchUpload::new(Vec::new()).unwrap().encode();
        let empty = BatchUploadRef::decode_ref(&empty_wire).unwrap();
        assert!(empty.is_empty());
        assert_eq!(empty.frames().count(), 0);
    }

    fn checkpoint() -> ServerCheckpoint {
        let upload = |rsu: u64, ones: &[usize]| {
            let mut bits = BitArray::new(256);
            for &i in ones {
                bits.set(i);
            }
            PeriodUpload {
                rsu: RsuId(rsu),
                counter: ones.len() as u64,
                bits,
            }
        };
        ServerCheckpoint {
            alpha: 0.25,
            history: vec![(RsuId(1), 1_500.0), (RsuId(4), 0.0), (RsuId(9), 33.5)],
            seqs: vec![(RsuId(1), 0), (RsuId(9), 7)],
            uploads: vec![upload(1, &[3, 77]), upload(9, &[0, 128, 255])],
        }
    }

    #[test]
    fn checkpoint_roundtrips_including_empty_sections() {
        let c = checkpoint();
        assert_eq!(ServerCheckpoint::decode(&c.encode()).unwrap(), c);
        let empty = ServerCheckpoint {
            alpha: 1.0,
            history: Vec::new(),
            seqs: Vec::new(),
            uploads: Vec::new(),
        };
        assert_eq!(ServerCheckpoint::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn checkpoint_rejects_truncation_wrong_tag_and_trailing_bytes() {
        let wire = checkpoint().encode();
        for cut in 0..wire.len() {
            assert!(ServerCheckpoint::decode(&wire[..cut]).is_err(), "cut {cut}");
        }
        let mut bad = wire.to_vec();
        bad[0] = TAG_BATCH;
        assert!(ServerCheckpoint::decode(&bad).is_err());
        let mut trailing = wire.to_vec();
        trailing.push(0);
        assert!(ServerCheckpoint::decode(&trailing).is_err());
    }

    #[test]
    fn checkpoint_rejects_bad_alpha_and_section_order() {
        let mut c = checkpoint();
        c.alpha = 0.0;
        assert!(matches!(
            ServerCheckpoint::decode(&c.encode()),
            Err(SimError::MalformedMessage {
                reason: "checkpoint alpha outside (0, 1]"
            })
        ));
        c.alpha = f64::NAN;
        assert!(ServerCheckpoint::decode(&c.encode()).is_err());
        let mut unsorted = checkpoint();
        unsorted.history.swap(0, 1);
        assert!(matches!(
            ServerCheckpoint::decode(&unsorted.encode()),
            Err(SimError::MalformedMessage {
                reason: "checkpoint history not strictly increasing"
            })
        ));
        let mut dup_seq = checkpoint();
        dup_seq.seqs.push((RsuId(9), 8));
        assert!(ServerCheckpoint::decode(&dup_seq.encode()).is_err());
        let mut dup_upload = checkpoint();
        let again = dup_upload.uploads[0].clone();
        dup_upload.uploads.push(again);
        assert!(matches!(
            ServerCheckpoint::decode(&dup_upload.encode()),
            Err(SimError::MalformedMessage {
                reason: "checkpoint uploads not strictly increasing"
            })
        ));
    }

    #[test]
    fn checkpoint_rejects_absurd_count_claim() {
        // A 17-byte frame must not be able to promise 2^60 history
        // entries and drive a giant validation loop.
        let mut wire = BytesMut::new();
        wire.put_u8(TAG_CHECKPOINT);
        wire.put_u64(0.5f64.to_bits());
        wire.put_u64(1 << 60);
        assert!(matches!(
            ServerCheckpoint::decode(&wire.freeze()),
            Err(SimError::MalformedMessage {
                reason: "checkpoint section count over limit"
            })
        ));
    }

    #[test]
    fn checkpoint_set_roundtrips_and_rejects_corruption() {
        let set = CheckpointSet {
            frames_applied: 12,
            shards: vec![
                checkpoint(),
                ServerCheckpoint {
                    alpha: 1.0,
                    history: Vec::new(),
                    seqs: Vec::new(),
                    uploads: Vec::new(),
                },
            ],
        };
        let wire = set.encode();
        assert_eq!(CheckpointSet::decode(&wire).unwrap(), set);
        for cut in 0..wire.len() {
            assert!(CheckpointSet::decode(&wire[..cut]).is_err(), "cut {cut}");
        }
        let mut bad = wire.to_vec();
        bad[0] = TAG_CHECKPOINT;
        assert!(CheckpointSet::decode(&bad).is_err());
        let mut trailing = wire.to_vec();
        trailing.push(0);
        assert!(CheckpointSet::decode(&trailing).is_err());
        // Zero shards is not a deployment.
        let mut empty = BytesMut::new();
        empty.put_u8(TAG_CHECKPOINT_SET);
        empty.put_u64(0);
        empty.put_u64(0);
        assert!(matches!(
            CheckpointSet::decode(&empty.freeze()),
            Err(SimError::MalformedMessage {
                reason: "invalid checkpoint set shard count"
            })
        ));
        // An absurd shard-count claim dies before any allocation.
        let mut absurd = BytesMut::new();
        absurd.put_u8(TAG_CHECKPOINT_SET);
        absurd.put_u64(0);
        absurd.put_u64(u64::MAX);
        assert!(CheckpointSet::decode(&absurd.freeze()).is_err());
    }
}
