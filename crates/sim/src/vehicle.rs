use serde::{Deserialize, Serialize};

use vcps_core::{Scheme, VehicleIdentity};
use vcps_hash::SplitMix64;

use crate::pki::TrustedAuthority;
use crate::protocol::{BitReport, Query};
use crate::{MacAddress, SimError};

/// A vehicle participating in the measurement system.
///
/// Wraps the secret [`VehicleIdentity`] with the protocol behaviour of
/// paper §IV-B: on receiving a [`Query`] the vehicle (1) verifies the
/// RSU's certificate against the trusted authority, (2) computes the
/// single bit index for this RSU, and (3) replies under a fresh one-time
/// MAC address. Nothing derived from the vehicle's identity or key ever
/// appears on the wire except the (uniformly distributed) bit index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimVehicle {
    identity: VehicleIdentity,
    mac_gen: SplitMix64,
}

impl SimVehicle {
    /// Creates a vehicle from its identity; `mac_seed` drives the
    /// one-time MAC generator (simulation-only randomness).
    #[must_use]
    pub fn new(identity: VehicleIdentity, mac_seed: u64) -> Self {
        Self {
            identity,
            mac_gen: SplitMix64::new(mac_seed),
        }
    }

    /// The vehicle's secret identity (never transmitted).
    #[must_use]
    pub fn identity(&self) -> &VehicleIdentity {
        &self.identity
    }

    /// Answers an RSU query, or refuses if the certificate does not
    /// verify.
    ///
    /// `m_o` is the deployment's largest array size (a public parameter
    /// every vehicle knows — it defines the logical-bit-array space).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CertificateRejected`] for certificates the
    /// authority did not issue — the vehicle stays silent toward
    /// untrusted RSUs.
    pub fn answer(
        &mut self,
        query: &Query,
        scheme: &Scheme,
        authority: &TrustedAuthority,
        m_o: usize,
    ) -> Result<BitReport, SimError> {
        if query.certificate.rsu != query.rsu || !authority.verify(&query.certificate) {
            return Err(SimError::CertificateRejected { rsu: query.rsu });
        }
        let index = scheme.report_index(&self.identity, query.rsu, query.array_size as usize, m_o);
        Ok(BitReport {
            mac: MacAddress::from_entropy(self.mac_gen.next_u64()),
            index: index as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcps_core::RsuId;

    fn setup() -> (Scheme, TrustedAuthority, Query) {
        let scheme = Scheme::variable(2, 3.0, 3).unwrap();
        let ca = TrustedAuthority::new(8);
        let query = Query {
            rsu: RsuId(4),
            certificate: ca.issue(RsuId(4)),
            array_size: 1 << 10,
        };
        (scheme, ca, query)
    }

    #[test]
    fn answers_valid_queries_with_in_range_index() {
        let (scheme, ca, query) = setup();
        let mut v = SimVehicle::new(VehicleIdentity::from_raw(1, 2), 77);
        let report = v.answer(&query, &scheme, &ca, 1 << 16).unwrap();
        assert!(report.index < 1 << 10);
    }

    #[test]
    fn same_rsu_same_index_fresh_mac() {
        let (scheme, ca, query) = setup();
        let mut v = SimVehicle::new(VehicleIdentity::from_raw(1, 2), 77);
        let a = v.answer(&query, &scheme, &ca, 1 << 16).unwrap();
        let b = v.answer(&query, &scheme, &ca, 1 << 16).unwrap();
        assert_eq!(a.index, b.index, "bit index is deterministic per RSU");
        assert_ne!(a.mac, b.mac, "MAC address must be one-time");
    }

    #[test]
    fn rejects_forged_certificates() {
        let (scheme, ca, mut query) = setup();
        query.certificate.tag ^= 1;
        let mut v = SimVehicle::new(VehicleIdentity::from_raw(1, 2), 77);
        assert_eq!(
            v.answer(&query, &scheme, &ca, 1 << 16),
            Err(SimError::CertificateRejected { rsu: RsuId(4) })
        );
    }

    #[test]
    fn rejects_certificates_for_other_rsus() {
        let (scheme, ca, mut query) = setup();
        // Replay RSU 4's certificate from an RSU claiming id 5.
        query.rsu = RsuId(5);
        let mut v = SimVehicle::new(VehicleIdentity::from_raw(1, 2), 77);
        assert!(v.answer(&query, &scheme, &ca, 1 << 16).is_err());
    }
}
