use std::error::Error;
use std::fmt;

use vcps_core::{CoreError, RsuId};
use vcps_durable::DurabilityError;

/// Errors produced by the simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A scheme-level operation failed.
    Core(CoreError),
    /// A vehicle rejected an RSU's certificate (simulated PKI failure).
    CertificateRejected {
        /// The RSU whose certificate failed verification.
        rsu: RsuId,
    },
    /// A wire message could not be decoded.
    MalformedMessage {
        /// What went wrong.
        reason: &'static str,
    },
    /// The server was asked about an RSU that never uploaded.
    MissingUpload {
        /// The absent RSU.
        rsu: RsuId,
    },
    /// A durable-storage operation (WAL append, checkpoint publish,
    /// recovery scan) failed.
    Durability(DurabilityError),
    /// A sliding-window O–D query was made before any period had
    /// completed — there is no matrix to answer from (the window
    /// analogue of [`SimError::MissingUpload`]: a typed refusal, never
    /// a NaN).
    EmptyWindow,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Core(e) => write!(f, "scheme error: {e}"),
            SimError::CertificateRejected { rsu } => {
                write!(f, "certificate of {rsu} failed verification")
            }
            SimError::MalformedMessage { reason } => {
                write!(f, "malformed wire message: {reason}")
            }
            SimError::MissingUpload { rsu } => {
                write!(f, "no period upload received from {rsu}")
            }
            SimError::Durability(e) => write!(f, "durability error: {e}"),
            SimError::EmptyWindow => {
                write!(f, "sliding window holds no completed period")
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Core(e) => Some(e),
            SimError::Durability(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for SimError {
    fn from(e: CoreError) -> Self {
        SimError::Core(e)
    }
}

impl From<DurabilityError> for SimError {
    fn from(e: DurabilityError) -> Self {
        SimError::Durability(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SimError::from(CoreError::Saturated { which: "B_x" });
        assert!(e.to_string().contains("B_x"));
        assert!(e.source().is_some());
        assert!(SimError::MissingUpload { rsu: RsuId(3) }
            .to_string()
            .contains("R3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
