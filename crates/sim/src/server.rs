use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use vcps_core::estimator::{estimate_pair, estimate_pair_or_clamp, Estimate};
use vcps_core::{RsuId, RsuSketch, Scheme, VolumeHistory};

use crate::protocol::PeriodUpload;
use crate::SimError;

/// The central server (paper §II-A, §IV-C).
///
/// Collects [`PeriodUpload`]s, answers point-to-point queries for
/// arbitrary RSU pairs, and at period end updates the per-RSU volume
/// history and recomputes next-period array sizes (the "first updates
/// the history average … then measures" loop of §IV-C).
///
/// # Example
///
/// ```
/// use vcps_core::{RsuId, Scheme};
/// use vcps_sim::{CentralServer, PeriodUpload};
/// use vcps_bitarray::BitArray;
///
/// # fn main() -> Result<(), vcps_sim::SimError> {
/// let scheme = Scheme::variable(2, 3.0, 1)?;
/// let mut server = CentralServer::new(scheme, 0.5);
/// server.receive(PeriodUpload { rsu: RsuId(1), counter: 4, bits: BitArray::new(16) });
/// let sizes = server.finish_period()?;
/// assert_eq!(sizes[&RsuId(1)], 16); // 4 vehicles × f̄ 3 → next power of two
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CentralServer {
    scheme: Scheme,
    history: VolumeHistory,
    uploads: BTreeMap<RsuId, PeriodUpload>,
}

impl CentralServer {
    /// Creates a server for a scheme; `history_alpha` is the EWMA
    /// smoothing factor for volume history.
    ///
    /// # Panics
    ///
    /// Panics if `history_alpha` is outside `(0, 1]`.
    #[must_use]
    pub fn new(scheme: Scheme, history_alpha: f64) -> Self {
        Self {
            scheme,
            history: VolumeHistory::new(history_alpha),
            uploads: BTreeMap::new(),
        }
    }

    /// Seeds an RSU's historical average (e.g. from past traffic
    /// studies) before the first period.
    pub fn seed_history(&mut self, rsu: RsuId, average: f64) {
        self.history.seed(rsu, average);
    }

    /// The volume history (read access).
    #[must_use]
    pub fn history(&self) -> &VolumeHistory {
        &self.history
    }

    /// The scheme configuration.
    #[must_use]
    pub fn scheme(&self) -> &Scheme {
        &self.scheme
    }

    /// Stores one RSU's period upload (overwrites a previous upload from
    /// the same RSU within the period).
    pub fn receive(&mut self, upload: PeriodUpload) {
        self.uploads.insert(upload.rsu, upload);
    }

    /// Number of uploads currently held.
    #[must_use]
    pub fn upload_count(&self) -> usize {
        self.uploads.len()
    }

    fn sketch_of(&self, rsu: RsuId) -> Result<RsuSketch, SimError> {
        let upload = self
            .uploads
            .get(&rsu)
            .ok_or(SimError::MissingUpload { rsu })?;
        Ok(RsuSketch::from_parts(
            upload.rsu,
            upload.bits.clone(),
            upload.counter,
        )?)
    }

    /// Estimates the point-to-point volume between two uploaded RSUs
    /// (paper Eq. 5).
    ///
    /// # Errors
    ///
    /// * [`SimError::MissingUpload`] if either RSU has not uploaded;
    /// * [`SimError::Core`] for saturation or incompatible sizes.
    pub fn estimate(&self, a: RsuId, b: RsuId) -> Result<Estimate, SimError> {
        Ok(estimate_pair(
            &self.sketch_of(a)?,
            &self.sketch_of(b)?,
            self.scheme.s(),
        )?)
    }

    /// Like [`estimate`](CentralServer::estimate) but clamps saturated
    /// zero counts instead of failing.
    ///
    /// # Errors
    ///
    /// * [`SimError::MissingUpload`] if either RSU has not uploaded;
    /// * [`SimError::Core`] for incompatible sizes.
    pub fn estimate_or_clamp(&self, a: RsuId, b: RsuId) -> Result<Estimate, SimError> {
        Ok(estimate_pair_or_clamp(
            &self.sketch_of(a)?,
            &self.sketch_of(b)?,
            self.scheme.s(),
        )?)
    }

    /// Ends the period: folds every upload's counter into the volume
    /// history, clears the uploads, and returns the array size each RSU
    /// should use next period.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Core`] if a size computation fails.
    pub fn finish_period(&mut self) -> Result<BTreeMap<RsuId, usize>, SimError> {
        let mut sizes = BTreeMap::new();
        for (&rsu, upload) in &self.uploads {
            self.history.update(rsu, upload.counter as f64);
        }
        for (rsu, average) in self.history.iter() {
            sizes.insert(rsu, self.scheme.array_size_for(average)?);
        }
        self.uploads.clear();
        Ok(sizes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcps_bitarray::BitArray;

    fn upload(rsu: u64, m: usize, ones: &[usize], counter: u64) -> PeriodUpload {
        let mut bits = BitArray::new(m);
        for &i in ones {
            bits.set(i);
        }
        PeriodUpload {
            rsu: RsuId(rsu),
            counter,
            bits,
        }
    }

    #[test]
    fn estimate_requires_uploads() {
        let server = CentralServer::new(Scheme::variable(2, 3.0, 1).unwrap(), 0.5);
        assert_eq!(
            server.estimate(RsuId(1), RsuId(2)),
            Err(SimError::MissingUpload { rsu: RsuId(1) })
        );
    }

    #[test]
    fn estimate_decodes_uploaded_pair() {
        let mut server = CentralServer::new(Scheme::variable(2, 3.0, 1).unwrap(), 0.5);
        server.receive(upload(1, 64, &[1, 5], 2));
        server.receive(upload(2, 256, &[1, 70], 2));
        let e = server.estimate(RsuId(1), RsuId(2)).unwrap();
        assert!(e.n_c.is_finite());
        assert_eq!(e.m_x, 64);
        assert_eq!(e.m_y, 256);
    }

    #[test]
    fn re_upload_replaces_previous() {
        let mut server = CentralServer::new(Scheme::variable(2, 3.0, 1).unwrap(), 0.5);
        server.receive(upload(1, 64, &[], 2));
        server.receive(upload(1, 64, &[3], 9));
        assert_eq!(server.upload_count(), 1);
        let sizes = server.finish_period().unwrap();
        // History saw 9, not 2: 9 × 3 = 27 → 32.
        assert_eq!(sizes[&RsuId(1)], 32);
    }

    #[test]
    fn finish_period_updates_history_and_clears() {
        let mut server = CentralServer::new(Scheme::variable(2, 3.0, 1).unwrap(), 1.0);
        server.seed_history(RsuId(1), 100.0);
        server.receive(upload(1, 64, &[], 1000));
        let sizes = server.finish_period().unwrap();
        assert_eq!(server.upload_count(), 0);
        // alpha = 1: history = last observation = 1000 → 3000 → 4096.
        assert_eq!(sizes[&RsuId(1)], 4096);
        assert_eq!(server.history().average(RsuId(1)), Some(1000.0));
    }

    #[test]
    fn seeded_rsus_get_sizes_without_uploads() {
        let mut server = CentralServer::new(Scheme::variable(2, 3.0, 1).unwrap(), 0.5);
        server.seed_history(RsuId(9), 500.0);
        let sizes = server.finish_period().unwrap();
        assert_eq!(sizes[&RsuId(9)], 2048); // 1500 → 2^11
    }

    #[test]
    fn fixed_scheme_sizes_are_constant() {
        let mut server = CentralServer::new(Scheme::fixed(2, 4096, 1).unwrap(), 0.5);
        server.receive(upload(1, 4096, &[], 10));
        server.receive(upload(2, 4096, &[], 1_000_000));
        let sizes = server.finish_period().unwrap();
        assert!(sizes.values().all(|&m| m == 4096));
    }
}
