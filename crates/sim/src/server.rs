use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use vcps_core::estimator::{estimate_pair, estimate_pair_or_clamp, Estimate};
use vcps_core::{
    CoreError, DegradedEstimate, PairEstimate, RsuId, RsuSketch, Scheme, VolumeHistory,
};

use crate::protocol::{PeriodUpload, SequencedUpload};
use crate::SimError;

/// How the server classified one incoming upload relative to what it
/// already holds (see [`CentralServer::receive`] and
/// [`CentralServer::receive_sequenced`]).
///
/// Lossy links make re-sends routine (the RSU retries whenever an ack is
/// lost), so the server must distinguish a benign duplicate from an RSU
/// that changed its story mid-period — silently taking the last write
/// would hide both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReceiveOutcome {
    /// First upload from this RSU (or a newer sequence number): stored.
    Fresh,
    /// Byte-identical to the stored upload: discarded idempotently.
    Duplicate,
    /// Same RSU (and sequence number) but *different* content — a
    /// corrupted frame that still parsed, or an equivocating RSU. The
    /// newer content replaces the old so behavior stays last-write-wins,
    /// but the caller is told.
    Conflicting,
    /// Sequence number at or below one already folded into history (a
    /// straggler from an earlier period): ignored entirely.
    Stale,
}

/// The central server (paper §II-A, §IV-C).
///
/// Collects [`PeriodUpload`]s, answers point-to-point queries for
/// arbitrary RSU pairs, and at period end updates the per-RSU volume
/// history and recomputes next-period array sizes (the "first updates
/// the history average … then measures" loop of §IV-C).
///
/// Under fault injection ([`crate::faults`]) the server additionally
/// deduplicates re-sent uploads by sequence number and, when an RSU's
/// upload never arrives, degrades gracefully: [`estimate_or_degraded`]
/// falls back to the volume history and answers with an explicit
/// [`PairEstimate::Degraded`] instead of failing.
///
/// [`estimate_or_degraded`]: CentralServer::estimate_or_degraded
///
/// # Example
///
/// ```
/// use vcps_core::{RsuId, Scheme};
/// use vcps_sim::{CentralServer, PeriodUpload};
/// use vcps_bitarray::BitArray;
///
/// # fn main() -> Result<(), vcps_sim::SimError> {
/// let scheme = Scheme::variable(2, 3.0, 1)?;
/// let mut server = CentralServer::new(scheme, 0.5)?;
/// server.receive(PeriodUpload { rsu: RsuId(1), counter: 4, bits: BitArray::new(16) });
/// let sizes = server.finish_period()?;
/// assert_eq!(sizes[&RsuId(1)], 16); // 4 vehicles × f̄ 3 → next power of two
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CentralServer {
    scheme: Scheme,
    history: VolumeHistory,
    uploads: BTreeMap<RsuId, PeriodUpload>,
    /// Highest sequence number accepted per RSU (survives
    /// [`finish_period`](CentralServer::finish_period) so stragglers from
    /// closed periods are recognized as stale).
    upload_seqs: BTreeMap<RsuId, u64>,
}

impl CentralServer {
    /// Creates a server for a scheme; `history_alpha` is the EWMA
    /// smoothing factor for volume history.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Core`] if `history_alpha` is outside `(0, 1]`
    /// (NaN included).
    pub fn new(scheme: Scheme, history_alpha: f64) -> Result<Self, SimError> {
        if !(history_alpha > 0.0 && history_alpha <= 1.0) {
            return Err(SimError::Core(CoreError::InvalidConfig {
                parameter: "history_alpha",
                reason: format!("must be in (0, 1], got {history_alpha}"),
            }));
        }
        Ok(Self {
            scheme,
            history: VolumeHistory::new(history_alpha),
            uploads: BTreeMap::new(),
            upload_seqs: BTreeMap::new(),
        })
    }

    /// Seeds an RSU's historical average (e.g. from past traffic
    /// studies) before the first period.
    pub fn seed_history(&mut self, rsu: RsuId, average: f64) {
        self.history.seed(rsu, average);
    }

    /// The volume history (read access).
    #[must_use]
    pub fn history(&self) -> &VolumeHistory {
        &self.history
    }

    /// The scheme configuration.
    #[must_use]
    pub fn scheme(&self) -> &Scheme {
        &self.scheme
    }

    /// Stores one RSU's period upload, reporting how it related to any
    /// upload already held for that RSU: [`Fresh`] (first), [`Duplicate`]
    /// (identical re-send, discarded), or [`Conflicting`] (different
    /// content — replaces the stored upload, but flagged).
    ///
    /// [`Fresh`]: ReceiveOutcome::Fresh
    /// [`Duplicate`]: ReceiveOutcome::Duplicate
    /// [`Conflicting`]: ReceiveOutcome::Conflicting
    pub fn receive(&mut self, upload: PeriodUpload) -> ReceiveOutcome {
        match self.uploads.get(&upload.rsu) {
            None => {
                self.uploads.insert(upload.rsu, upload);
                ReceiveOutcome::Fresh
            }
            Some(prev) if *prev == upload => ReceiveOutcome::Duplicate,
            Some(_) => {
                self.uploads.insert(upload.rsu, upload);
                ReceiveOutcome::Conflicting
            }
        }
    }

    /// Stores a sequence-numbered upload from the retrying upload path
    /// ([`crate::faults::upload_with_retry`]).
    ///
    /// Sequence numbers are per-RSU and monotone across periods (the
    /// engine uses the period index), which lets the server tell a
    /// harmless retransmission ([`ReceiveOutcome::Duplicate`]) from a
    /// straggler of an already-closed period ([`ReceiveOutcome::Stale`])
    /// — the latter must not resurrect as the *current* period's data.
    pub fn receive_sequenced(&mut self, sequenced: SequencedUpload) -> ReceiveOutcome {
        let rsu = sequenced.upload.rsu;
        match self.upload_seqs.get(&rsu).copied() {
            Some(seen) if sequenced.seq < seen => ReceiveOutcome::Stale,
            Some(seen) if sequenced.seq == seen => match self.uploads.get(&rsu) {
                // Same sequence but the period already closed: the upload
                // was folded into history, so a re-send carries nothing.
                None => ReceiveOutcome::Stale,
                Some(prev) if *prev == sequenced.upload => ReceiveOutcome::Duplicate,
                Some(_) => {
                    self.uploads.insert(rsu, sequenced.upload);
                    ReceiveOutcome::Conflicting
                }
            },
            _ => {
                self.upload_seqs.insert(rsu, sequenced.seq);
                self.uploads.insert(rsu, sequenced.upload);
                ReceiveOutcome::Fresh
            }
        }
    }

    /// Number of uploads currently held.
    #[must_use]
    pub fn upload_count(&self) -> usize {
        self.uploads.len()
    }

    /// The upload currently held for `rsu`, if any.
    #[must_use]
    pub fn upload(&self, rsu: RsuId) -> Option<&PeriodUpload> {
        self.uploads.get(&rsu)
    }

    fn sketch_of(&self, rsu: RsuId) -> Result<RsuSketch, SimError> {
        let upload = self
            .uploads
            .get(&rsu)
            .ok_or(SimError::MissingUpload { rsu })?;
        Ok(RsuSketch::from_parts(
            upload.rsu,
            upload.bits.clone(),
            upload.counter,
        )?)
    }

    /// Estimates the point-to-point volume between two uploaded RSUs
    /// (paper Eq. 5).
    ///
    /// # Errors
    ///
    /// * [`SimError::MissingUpload`] if either RSU has not uploaded;
    /// * [`SimError::Core`] for saturation or incompatible sizes.
    pub fn estimate(&self, a: RsuId, b: RsuId) -> Result<Estimate, SimError> {
        Ok(estimate_pair(
            &self.sketch_of(a)?,
            &self.sketch_of(b)?,
            self.scheme.s(),
        )?)
    }

    /// Like [`estimate`](CentralServer::estimate) but clamps saturated
    /// zero counts instead of failing.
    ///
    /// # Errors
    ///
    /// * [`SimError::MissingUpload`] if either RSU has not uploaded;
    /// * [`SimError::Core`] for incompatible sizes.
    pub fn estimate_or_clamp(&self, a: RsuId, b: RsuId) -> Result<Estimate, SimError> {
        Ok(estimate_pair_or_clamp(
            &self.sketch_of(a)?,
            &self.sketch_of(b)?,
            self.scheme.s(),
        )?)
    }

    /// Answers a pair query even when uploads are missing: full decode
    /// when both sketches are present ([`PairEstimate::Measured`]),
    /// otherwise a history-backed fallback ([`PairEstimate::Degraded`])
    /// that brackets the overlap with the feasible interval
    /// `[0, min(n̄_x, n̄_y)]`.
    ///
    /// A present side contributes its measured counter; a missing side
    /// contributes its EWMA volume history.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MissingUpload`] only when a side has *neither*
    /// an upload nor any volume history — the server knows nothing at all
    /// about that RSU.
    pub fn estimate_or_degraded(&self, a: RsuId, b: RsuId) -> Result<PairEstimate, SimError> {
        match (self.sketch_of(a), self.sketch_of(b)) {
            (Ok(x), Ok(y)) => match estimate_pair_or_clamp(&x, &y, self.scheme.s()) {
                Ok(e) => Ok(PairEstimate::Measured(e)),
                // Sketches present but not comparable (e.g. a corrupted
                // size that slipped through): counters still bound the
                // overlap, so degrade rather than fail.
                Err(_) => Ok(PairEstimate::Degraded(DegradedEstimate::from_volumes(
                    x.count() as f64,
                    y.count() as f64,
                    false,
                    false,
                ))),
            },
            (ra, rb) => {
                let missing_a = ra.is_err();
                let missing_b = rb.is_err();
                let volume_of = |rsu: RsuId, r: Result<RsuSketch, SimError>| match r {
                    Ok(s) => Ok(s.count() as f64),
                    Err(_) => self
                        .history
                        .average(rsu)
                        .ok_or(SimError::MissingUpload { rsu }),
                };
                let va = volume_of(a, ra)?;
                let vb = volume_of(b, rb)?;
                Ok(PairEstimate::Degraded(DegradedEstimate::from_volumes(
                    va, vb, missing_a, missing_b,
                )))
            }
        }
    }

    /// Ends the period: folds every upload's counter into the volume
    /// history, clears the uploads, and returns the array size each RSU
    /// should use next period.
    ///
    /// Sequence-number bookkeeping survives, so stragglers from the
    /// closed period are still recognized as stale.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Core`] if a size computation fails.
    pub fn finish_period(&mut self) -> Result<BTreeMap<RsuId, usize>, SimError> {
        let mut sizes = BTreeMap::new();
        for (&rsu, upload) in &self.uploads {
            self.history.update(rsu, upload.counter as f64);
        }
        for (rsu, average) in self.history.iter() {
            sizes.insert(rsu, self.scheme.array_size_for(average)?);
        }
        self.uploads.clear();
        Ok(sizes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcps_bitarray::BitArray;

    fn upload(rsu: u64, m: usize, ones: &[usize], counter: u64) -> PeriodUpload {
        let mut bits = BitArray::new(m);
        for &i in ones {
            bits.set(i);
        }
        PeriodUpload {
            rsu: RsuId(rsu),
            counter,
            bits,
        }
    }

    fn server() -> CentralServer {
        CentralServer::new(Scheme::variable(2, 3.0, 1).unwrap(), 0.5).unwrap()
    }

    #[test]
    fn new_rejects_out_of_range_alpha() {
        let scheme = Scheme::variable(2, 3.0, 1).unwrap();
        for alpha in [0.0, -0.5, 1.5, f64::NAN, f64::INFINITY] {
            let err = CentralServer::new(scheme.clone(), alpha);
            assert!(err.is_err(), "alpha {alpha} must be rejected");
        }
        assert!(CentralServer::new(scheme.clone(), 1.0).is_ok());
        assert!(CentralServer::new(scheme, 0.01).is_ok());
    }

    #[test]
    fn estimate_requires_uploads() {
        let server = server();
        assert_eq!(
            server.estimate(RsuId(1), RsuId(2)),
            Err(SimError::MissingUpload { rsu: RsuId(1) })
        );
    }

    #[test]
    fn estimate_decodes_uploaded_pair() {
        let mut server = server();
        server.receive(upload(1, 64, &[1, 5], 2));
        server.receive(upload(2, 256, &[1, 70], 2));
        let e = server.estimate(RsuId(1), RsuId(2)).unwrap();
        assert!(e.n_c.is_finite());
        assert_eq!(e.m_x, 64);
        assert_eq!(e.m_y, 256);
    }

    #[test]
    fn receive_classifies_fresh_duplicate_conflicting() {
        let mut server = server();
        assert_eq!(server.receive(upload(1, 64, &[], 2)), ReceiveOutcome::Fresh);
        assert_eq!(
            server.receive(upload(1, 64, &[], 2)),
            ReceiveOutcome::Duplicate
        );
        assert_eq!(
            server.receive(upload(1, 64, &[3], 9)),
            ReceiveOutcome::Conflicting
        );
        // Conflicting content replaced the stored upload.
        assert_eq!(server.upload(RsuId(1)).unwrap().counter, 9);
        assert_eq!(server.upload_count(), 1);
    }

    #[test]
    fn re_upload_replaces_previous() {
        let mut server = server();
        server.receive(upload(1, 64, &[], 2));
        server.receive(upload(1, 64, &[3], 9));
        assert_eq!(server.upload_count(), 1);
        let sizes = server.finish_period().unwrap();
        // History saw 9, not 2: 9 × 3 = 27 → 32.
        assert_eq!(sizes[&RsuId(1)], 32);
    }

    #[test]
    fn sequenced_uploads_dedup_and_age_out() {
        let mut server = server();
        let wrap = |seq, up| SequencedUpload { seq, upload: up };
        assert_eq!(
            server.receive_sequenced(wrap(0, upload(1, 64, &[1], 5))),
            ReceiveOutcome::Fresh
        );
        assert_eq!(
            server.receive_sequenced(wrap(0, upload(1, 64, &[1], 5))),
            ReceiveOutcome::Duplicate
        );
        assert_eq!(
            server.receive_sequenced(wrap(0, upload(1, 64, &[2], 5))),
            ReceiveOutcome::Conflicting
        );
        // Next period: higher sequence is fresh again…
        assert_eq!(
            server.receive_sequenced(wrap(1, upload(1, 64, &[9], 7))),
            ReceiveOutcome::Fresh
        );
        // …and the old sequence is stale, leaving the new data intact.
        assert_eq!(
            server.receive_sequenced(wrap(0, upload(1, 64, &[1], 5))),
            ReceiveOutcome::Stale
        );
        assert_eq!(server.upload(RsuId(1)).unwrap().counter, 7);
    }

    #[test]
    fn sequenced_straggler_after_finish_period_is_stale() {
        let mut server = server();
        let wrap = |seq, up| SequencedUpload { seq, upload: up };
        server.receive_sequenced(wrap(3, upload(1, 64, &[1], 5)));
        server.finish_period().unwrap();
        assert_eq!(server.upload_count(), 0);
        // A re-send of the already-folded upload must not resurrect it as
        // current-period data.
        assert_eq!(
            server.receive_sequenced(wrap(3, upload(1, 64, &[1], 5))),
            ReceiveOutcome::Stale
        );
        assert_eq!(server.upload_count(), 0);
    }

    #[test]
    fn finish_period_updates_history_and_clears() {
        let mut server = CentralServer::new(Scheme::variable(2, 3.0, 1).unwrap(), 1.0).unwrap();
        server.seed_history(RsuId(1), 100.0);
        server.receive(upload(1, 64, &[], 1000));
        let sizes = server.finish_period().unwrap();
        assert_eq!(server.upload_count(), 0);
        // alpha = 1: history = last observation = 1000 → 3000 → 4096.
        assert_eq!(sizes[&RsuId(1)], 4096);
        assert_eq!(server.history().average(RsuId(1)), Some(1000.0));
    }

    #[test]
    fn seeded_rsus_get_sizes_without_uploads() {
        let mut server = server();
        server.seed_history(RsuId(9), 500.0);
        let sizes = server.finish_period().unwrap();
        assert_eq!(sizes[&RsuId(9)], 2048); // 1500 → 2^11
    }

    #[test]
    fn fixed_scheme_sizes_are_constant() {
        let mut server = CentralServer::new(Scheme::fixed(2, 4096, 1).unwrap(), 0.5).unwrap();
        server.receive(upload(1, 4096, &[], 10));
        server.receive(upload(2, 4096, &[], 1_000_000));
        let sizes = server.finish_period().unwrap();
        assert!(sizes.values().all(|&m| m == 4096));
    }

    #[test]
    fn zero_counter_uploads_estimate_to_zero_overlap() {
        // Empty arrays and zero counters are a legal (if dull) period:
        // the decode must produce 0, not NaN or an error.
        let mut server = server();
        server.receive(upload(1, 64, &[], 0));
        server.receive(upload(2, 64, &[], 0));
        let e = server.estimate(RsuId(1), RsuId(2)).unwrap();
        assert_eq!(e.n_c, 0.0);
        assert!(e.n_c.is_finite());
        let p = server.estimate_or_degraded(RsuId(1), RsuId(2)).unwrap();
        assert!(!p.is_degraded());
        assert_eq!(p.n_c(), 0.0);
    }

    #[test]
    fn degraded_fallback_uses_history_for_missing_side() {
        let mut server = server();
        server.seed_history(RsuId(2), 80.0);
        server.receive(upload(1, 64, &[1, 2], 50));
        // RSU 2 never uploaded: degraded answer bounded by min(50, 80).
        let p = server.estimate_or_degraded(RsuId(1), RsuId(2)).unwrap();
        assert!(p.is_degraded());
        assert!(p.measured().is_none());
        match p {
            PairEstimate::Degraded(d) => {
                assert!(!d.missing_x);
                assert!(d.missing_y);
                assert_eq!(d.upper, 50.0);
                assert_eq!(d.lower, 0.0);
                assert_eq!(d.n_c, 25.0);
            }
            PairEstimate::Measured(_) => unreachable!(),
        }
    }

    #[test]
    fn degraded_fallback_with_both_sides_missing() {
        let mut server = server();
        server.seed_history(RsuId(1), 40.0);
        server.seed_history(RsuId(2), 60.0);
        let p = server.estimate_or_degraded(RsuId(1), RsuId(2)).unwrap();
        match p {
            PairEstimate::Degraded(d) => {
                assert!(d.missing_x && d.missing_y);
                assert_eq!(d.upper, 40.0);
            }
            PairEstimate::Measured(_) => unreachable!(),
        }
    }

    #[test]
    fn degraded_fallback_fails_only_with_no_knowledge_at_all() {
        let server = server();
        assert_eq!(
            server.estimate_or_degraded(RsuId(1), RsuId(2)),
            Err(SimError::MissingUpload { rsu: RsuId(1) })
        );
    }

    #[test]
    fn measured_beats_degraded_when_both_uploads_arrive() {
        let mut server = server();
        server.seed_history(RsuId(1), 9999.0);
        server.seed_history(RsuId(2), 9999.0);
        server.receive(upload(1, 64, &[1, 5], 2));
        server.receive(upload(2, 256, &[1, 70], 2));
        let p = server.estimate_or_degraded(RsuId(1), RsuId(2)).unwrap();
        assert!(!p.is_degraded());
        assert!(p.measured().is_some());
    }
}
