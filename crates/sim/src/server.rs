use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::RwLock;

use serde::{Deserialize, Serialize};

use vcps_bitarray::{
    combined_zero_count_adaptive, select_pair_kernel, select_pair_kernel_with_cost,
    sparse_is_profitable, DecodeScratch, PairKernel,
};
use vcps_core::estimator::{
    estimate_from_counts, estimate_from_counts_or_clamp, first_plays_x, Estimate, PairCounts,
};
use vcps_core::{CoreError, DegradedEstimate, PairEstimate, RsuId, Scheme, VolumeHistory};
use vcps_obs::{Level, Obs, Phase, Value};

use crate::protocol::{PeriodUpload, SequencedUpload, SequencedUploadRef, ServerCheckpoint};
use crate::SimError;

thread_local! {
    /// Per-thread scratch for the sparse-sparse decode kernel, so both
    /// the single-pair and all-pairs paths reuse one membership mask per
    /// worker instead of allocating per pair.
    static SCRATCH: RefCell<DecodeScratch> = RefCell::new(DecodeScratch::new());
}

/// Runs `f` with this thread's decode scratch — the same per-worker
/// buffer the monolithic estimate and O–D paths use, shared with the
/// sharded server so both paths reuse identical kernel state.
pub(crate) fn with_thread_scratch<R>(f: impl FnOnce(&mut DecodeScratch) -> R) -> R {
    SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

/// The registry counter a receive outcome maps to — shared by the
/// monolithic and sharded receive paths so both fire the exact same
/// names and the differential suite can compare snapshots verbatim.
pub(crate) fn receive_counter_name(outcome: ReceiveOutcome) -> &'static str {
    match outcome {
        ReceiveOutcome::Fresh => "server.receive.fresh",
        ReceiveOutcome::Duplicate => "server.receive.duplicate",
        ReceiveOutcome::Conflicting => "server.receive.conflicting",
        ReceiveOutcome::Stale => "server.receive.stale",
    }
}

/// Records which decode kernel [`select_pair_kernel`] picks for a
/// pair and why: a per-kernel counter always, and at `Debug` level a
/// `kernel_select` event carrying the cost-model inputs (the array
/// sizes and set-bit counts the selector weighed). Mirrors the exact
/// selection [`combined_zero_count_adaptive`] makes internally — same
/// function, same inputs — without touching the decode itself. Takes
/// the handle explicitly so the monolithic and sharded decode paths
/// attribute to their respective registries through one code path.
fn note_kernel_choice(
    obs: &Obs,
    m_x: usize,
    ones_x: Option<&[u64]>,
    m_y: usize,
    ones_y: Option<&[u64]>,
) {
    let kernel = select_pair_kernel(m_x, ones_x.map(<[u64]>::len), m_y, ones_y.map(<[u64]>::len));
    obs.inc(match kernel {
        PairKernel::Dense => "kernel.dense",
        PairKernel::SparseSparse => "kernel.sparse_sparse",
        PairKernel::SparseDense => "kernel.sparse_dense",
        PairKernel::DenseSparse => "kernel.dense_sparse",
    });
    if obs.enabled_at(Level::Debug) {
        obs.event(
            Level::Debug,
            "kernel_select",
            &[
                ("kernel", Value::Str(kernel.label().to_string())),
                ("m_x", Value::U64(m_x as u64)),
                ("m_y", Value::U64(m_y as u64)),
                (
                    "sparse_ones_x",
                    ones_x.map_or(Value::Str("dense".to_string()), |o| {
                        Value::U64(o.len() as u64)
                    }),
                ),
                (
                    "sparse_ones_y",
                    ones_y.map_or(Value::Str("dense".to_string()), |o| {
                        Value::U64(o.len() as u64)
                    }),
                ),
            ],
        );
    }
}

/// One RSU's decode-relevant state, resolved once per all-pairs call.
///
/// The naive pair loop resolves `uploads` and `sparse_ones` map entries
/// per *pair* — `O(N²)` tree walks for `N` RSUs, which dominates decode
/// time on sparse workloads. Prefetching the `N` lookups once and
/// handing the pair loop plain references removes that entirely. The
/// `holder` back-pointer keeps the degraded path's history lookups and
/// scheme access working across shards (each RSU's state lives in
/// exactly one holder).
pub(crate) struct RsuDecodeRef<'a> {
    pub(crate) rsu: RsuId,
    pub(crate) holder: &'a CentralServer,
    pub(crate) upload: Option<&'a PeriodUpload>,
    pub(crate) ones: Option<&'a [u64]>,
}

/// The decodability gate behind [`CentralServer::decodable_upload`],
/// usable with a prefetched upload reference: present, and at least 2
/// bits (the estimator needs a meaningful zero fraction).
fn check_decodable(upload: Option<&PeriodUpload>, rsu: RsuId) -> Result<&PeriodUpload, SimError> {
    let upload = upload.ok_or(SimError::MissingUpload { rsu })?;
    if upload.bits.len() < 2 {
        return Err(SimError::Core(CoreError::InvalidConfig {
            parameter: "m",
            reason: format!(
                "bit array size must be at least 2, got {}",
                upload.bits.len()
            ),
        }));
    }
    Ok(upload)
}

/// Decodes one pair's sufficient statistics from already-resolved upload
/// references and sparse lists: orient, pick the cheapest kernel, count.
/// Both [`CentralServer::pair_counts_across`] (which resolves the maps
/// per call) and the prefetched all-pairs loop funnel through this one
/// function, so the two paths are bit-identical by construction.
fn pair_counts_oriented(
    ua: &PeriodUpload,
    ones_a: Option<&[u64]>,
    ub: &PeriodUpload,
    ones_b: Option<&[u64]>,
    scratch: &mut DecodeScratch,
    obs: &Obs,
) -> Result<PairCounts, SimError> {
    let _timer = obs.phase(Phase::Decode);
    let a_first = first_plays_x(
        ua.bits.len(),
        ua.counter,
        ua.rsu,
        ub.bits.len(),
        ub.counter,
        ub.rsu,
    );
    let ((x, ones_x), (y, ones_y)) = if a_first {
        ((ua, ones_a), (ub, ones_b))
    } else {
        ((ub, ones_b), (ua, ones_a))
    };
    if obs.is_enabled() {
        note_kernel_choice(obs, x.bits.len(), ones_x, y.bits.len(), ones_y);
    }
    let u_c = combined_zero_count_adaptive(&x.bits, ones_x, &y.bits, ones_y, scratch)
        .map_err(CoreError::from)?;
    Ok(PairCounts {
        m_x: x.bits.len(),
        m_y: y.bits.len(),
        u_x: x.bits.count_zeros(),
        u_y: y.bits.count_zeros(),
        u_c,
        n_x: x.counter,
        n_y: y.counter,
    })
}

/// [`pair_counts_oriented`] over two prefetched per-RSU refs, applying
/// the same decodability gate the map-resolving path applies.
pub(crate) fn pair_counts_prefetched(
    a: &RsuDecodeRef<'_>,
    b: &RsuDecodeRef<'_>,
    scratch: &mut DecodeScratch,
    obs: &Obs,
) -> Result<PairCounts, SimError> {
    let ua = check_decodable(a.upload, a.rsu)?;
    let ub = check_decodable(b.upload, b.rsu)?;
    pair_counts_oriented(ua, a.ones, ub, b.ones, scratch, obs)
}

/// Pair count below which the all-pairs decoder estimates the triangle's
/// work before fanning out (estimating costs one selector evaluation per
/// pair, so it is itself skipped for big triangles, which always
/// parallelize).
const OD_ESTIMATE_PAIR_LIMIT: usize = 4096;

/// Estimated triangle work, in kernel-cost word-units, below which
/// [`CentralServer::od_matrix_threads`] runs sequentially instead of
/// dispatching the worker pool. Calibrated on the reference box against
/// the pool's measured dispatch+rendezvous cost (tens of µs): an 8-RSU
/// triangle at any load factor lands well below this threshold — fixing
/// the historical 2/4-thread regression on small matrices — while a
/// 24-RSU triangle at moderate load clears it.
const OD_SEQUENTIAL_COST_LIMIT: usize = 400_000;

/// Fixed per-pair overhead (orientation, selection, estimator
/// arithmetic, result push) in the same word-units, added on top of the
/// selected kernel's modeled cost when estimating triangle work.
const OD_PAIR_OVERHEAD: usize = 600;

/// At most this many pairs are cost-modeled when estimating a
/// triangle's work; larger triangles are sampled at an even stride and
/// the sum extrapolated. The estimate only gates a threshold decision,
/// so sampling error is harmless — but the loop runs *immediately
/// before* the decode it is sizing, and keeping it tiny matters beyond
/// its own runtime: a few hundred branchy selector evaluations measured
/// ~12 µs of slowdown on the following 24-RSU decode (front-end /
/// branch-predictor pollution), an order of magnitude more than the
/// loop itself.
const OD_ESTIMATE_SAMPLES: usize = 64;

/// Decides the effective thread count for an all-pairs decode: requested
/// threads, unless the triangle's estimated work is too small to repay a
/// pool dispatch, in which case 1 (the inline path).
pub(crate) fn od_effective_threads(
    threads: usize,
    pre: &[RsuDecodeRef<'_>],
    pair_count: usize,
) -> usize {
    if threads <= 1 {
        return threads;
    }
    if pair_count >= OD_ESTIMATE_PAIR_LIMIT {
        return threads;
    }
    // Hoist each RSU's (array length, index-list length) out of its
    // upload once: the sampled pair loop below must stay pure
    // arithmetic over this dense vector — chasing the upload references
    // per pair costs more than the decode it is trying to avoid
    // estimating.
    let sides: Vec<Option<(usize, Option<usize>)>> = pre
        .iter()
        .map(|d| d.upload.map(|u| (u.bits.len(), d.ones.map(<[u64]>::len))))
        .collect();
    let stride = pair_count.div_ceil(OD_ESTIMATE_SAMPLES).max(1);
    let mut cost = 0usize;
    let mut k = 0usize;
    for (i, a) in sides.iter().enumerate() {
        for b in &sides[i + 1..] {
            let sampled = k.is_multiple_of(stride);
            k += 1;
            if !sampled {
                continue;
            }
            cost += OD_PAIR_OVERHEAD;
            if let (Some((la, oa)), Some((lb, ob))) = (a, b) {
                // Orient by size like the decoder (only the cost matters
                // here, so counter tie-breaks are irrelevant).
                let ((m_x, ones_x), (m_y, ones_y)) = if la <= lb {
                    ((*la, *oa), (*lb, *ob))
                } else {
                    ((*lb, *ob), (*la, *oa))
                };
                cost += select_pair_kernel_with_cost(m_x, ones_x, m_y, ones_y).1;
            }
            // Each sampled pair stands for `stride` real ones.
            if cost.saturating_mul(stride) >= OD_SEQUENTIAL_COST_LIMIT {
                return threads;
            }
        }
    }
    if cost.saturating_mul(stride) >= OD_SEQUENTIAL_COST_LIMIT {
        return threads;
    }
    1
}

/// How the server classified one incoming upload relative to what it
/// already holds (see [`CentralServer::receive`] and
/// [`CentralServer::receive_sequenced`]).
///
/// Lossy links make re-sends routine (the RSU retries whenever an ack is
/// lost), so the server must distinguish a benign duplicate from an RSU
/// that changed its story mid-period — silently taking the last write
/// would hide both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReceiveOutcome {
    /// First upload from this RSU (or a newer sequence number): stored.
    Fresh,
    /// Byte-identical to the stored upload: discarded idempotently.
    Duplicate,
    /// Same RSU (and sequence number) but *different* content — a
    /// corrupted frame that still parsed, or an equivocating RSU. The
    /// newer content replaces the old so behavior stays last-write-wins,
    /// but the caller is told.
    Conflicting,
    /// Sequence number at or below one already folded into history (a
    /// straggler from an earlier period): ignored entirely.
    Stale,
}

/// Decode-side caches derived from the uploads of the current period.
///
/// * `sparse_ones` — the sorted set-bit index list of every upload still
///   under the densify threshold ([`vcps_bitarray::sparse_is_profitable`]),
///   extracted once at receive time and shared by all `N−1` pair decodes
///   that touch the RSU.
/// * `pair_memo` — the [`PairCounts`] of every pair already decoded this
///   period, so repeated single-pair queries are O(1) after first touch.
///
/// Lifetime: entries for an RSU are dropped whenever a new upload
/// replaces its data ([`ReceiveOutcome::Fresh`] / `Conflicting`), and
/// everything is cleared by [`CentralServer::finish_period`] — the
/// caches never outlive the uploads they were derived from.
///
/// The caches are pure accelerators: they are ignored by equality,
/// carried empty through (de)serialization, and rebuilt lazily, so a
/// restored or cloned server answers identically (at worst via the dense
/// kernel until re-populated).
#[derive(Debug, Default)]
struct DecodeCaches {
    sparse_ones: BTreeMap<RsuId, Vec<u64>>,
    pair_memo: RwLock<BTreeMap<(RsuId, RsuId), PairCounts>>,
}

impl Clone for DecodeCaches {
    fn clone(&self) -> Self {
        Self {
            sparse_ones: self.sparse_ones.clone(),
            pair_memo: RwLock::new(self.pair_memo.read().expect("pair memo poisoned").clone()),
        }
    }
}

impl PartialEq for DecodeCaches {
    fn eq(&self, _other: &Self) -> bool {
        // Caches are derived state: two servers with equal uploads answer
        // identically regardless of what either has memoized.
        true
    }
}

impl Serialize for DecodeCaches {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        // Derived state: nothing to persist (matches the offline serde
        // shim's placeholder sink; with real serde this would be a unit).
        serializer.serialize_stub()
    }
}

impl<'de> Deserialize<'de> for DecodeCaches {
    fn deserialize<D: serde::Deserializer<'de>>(_deserializer: D) -> Result<Self, D::Error> {
        // Rebuilt lazily after restore.
        Ok(Self::default())
    }
}

/// The server's observability handle ([`vcps_obs::Obs`]), wrapped so it
/// follows the same derived-state policy as [`DecodeCaches`]: ignored by
/// equality (instrumentation never changes what a server answers),
/// dropped through (de)serialization (a restored server comes back with
/// observability off), and defaulting to the disabled no-op handle.
#[derive(Debug, Clone, Default)]
struct ObsCell(Obs);

impl PartialEq for ObsCell {
    fn eq(&self, _other: &Self) -> bool {
        // Observability is side-channel state: two servers with equal
        // uploads answer identically whatever either has recorded.
        true
    }
}

impl Serialize for ObsCell {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        // Side-channel state: nothing to persist.
        serializer.serialize_stub()
    }
}

impl<'de> Deserialize<'de> for ObsCell {
    fn deserialize<D: serde::Deserializer<'de>>(_deserializer: D) -> Result<Self, D::Error> {
        // Restored servers start with observability disabled.
        Ok(Self::default())
    }
}

/// One period's origin–destination matrix: the [`PairEstimate`] for
/// every unordered pair of RSUs the server knows about (uploads and
/// volume history), produced by [`CentralServer::od_matrix`].
///
/// Stored row-major over the sorted RSU list; the diagonal is `None`
/// (an RSU's "overlap with itself" is just its counter, not an O–D
/// flow) and each pair is decoded once — the mirror entry is the same
/// estimate with the argument roles swapped
/// ([`PairEstimate::transposed`]), so `at(i, j)` always equals
/// `estimate_or_degraded(rsus[i], rsus[j])` exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OdMatrix {
    rsus: Vec<RsuId>,
    entries: Vec<Option<PairEstimate>>,
}

impl OdMatrix {
    /// Assembles a matrix from the upper-triangle estimates computed by
    /// a decode fan-out (monolithic or sharded): each `(i, j)` estimate
    /// fills its entry and its transposed mirror, exactly as
    /// [`CentralServer::od_matrix_threads`] has always laid them out.
    pub(crate) fn from_pair_estimates(
        rsus: Vec<RsuId>,
        pairs: &[(usize, usize)],
        computed: Vec<Result<PairEstimate, SimError>>,
    ) -> Result<Self, SimError> {
        let n = rsus.len();
        let mut entries = vec![None; n * n];
        for (&(i, j), result) in pairs.iter().zip(computed) {
            let estimate = result?;
            entries[j * n + i] = Some(estimate.transposed());
            entries[i * n + j] = Some(estimate);
        }
        Ok(Self { rsus, entries })
    }

    /// The RSUs covered, in ascending id order (the matrix axes).
    #[must_use]
    pub fn rsus(&self) -> &[RsuId] {
        &self.rsus
    }

    /// Number of RSUs covered (the matrix is `len × len`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.rsus.len()
    }

    /// `true` if the server knew no RSUs at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rsus.is_empty()
    }

    /// The estimate at row `i`, column `j` of the matrix (`None` on the
    /// diagonal).
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is not below [`len`](OdMatrix::len).
    #[must_use]
    pub fn at(&self, i: usize, j: usize) -> Option<&PairEstimate> {
        assert!(i < self.len() && j < self.len(), "index out of range");
        self.entries[i * self.rsus.len() + j].as_ref()
    }

    /// The estimate for an RSU pair by id, `None` if either RSU is not
    /// covered or `a == b`.
    #[must_use]
    pub fn get(&self, a: RsuId, b: RsuId) -> Option<&PairEstimate> {
        let i = self.rsus.binary_search(&a).ok()?;
        let j = self.rsus.binary_search(&b).ok()?;
        self.entries[i * self.rsus.len() + j].as_ref()
    }

    /// Iterates the upper triangle: every unordered pair once, as
    /// `(origin, destination, estimate)` with `origin < destination`.
    pub fn iter_pairs(&self) -> impl Iterator<Item = (RsuId, RsuId, &PairEstimate)> {
        let n = self.rsus.len();
        (0..n).flat_map(move |i| {
            (i + 1..n).filter_map(move |j| {
                self.entries[i * n + j]
                    .as_ref()
                    .map(|e| (self.rsus[i], self.rsus[j], e))
            })
        })
    }
}

/// The central server (paper §II-A, §IV-C).
///
/// Collects [`PeriodUpload`]s, answers point-to-point queries for
/// arbitrary RSU pairs, and at period end updates the per-RSU volume
/// history and recomputes next-period array sizes (the "first updates
/// the history average … then measures" loop of §IV-C).
///
/// Under fault injection ([`crate::faults`]) the server additionally
/// deduplicates re-sent uploads by sequence number and, when an RSU's
/// upload never arrives, degrades gracefully: [`estimate_or_degraded`]
/// falls back to the volume history and answers with an explicit
/// [`PairEstimate::Degraded`] instead of failing.
///
/// [`estimate_or_degraded`]: CentralServer::estimate_or_degraded
///
/// # Example
///
/// ```
/// use vcps_core::{RsuId, Scheme};
/// use vcps_sim::{CentralServer, PeriodUpload};
/// use vcps_bitarray::BitArray;
///
/// # fn main() -> Result<(), vcps_sim::SimError> {
/// let scheme = Scheme::variable(2, 3.0, 1)?;
/// let mut server = CentralServer::new(scheme, 0.5)?;
/// server.receive(PeriodUpload { rsu: RsuId(1), counter: 4, bits: BitArray::new(16) });
/// let sizes = server.finish_period()?;
/// assert_eq!(sizes[&RsuId(1)], 16); // 4 vehicles × f̄ 3 → next power of two
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CentralServer {
    scheme: Scheme,
    history: VolumeHistory,
    uploads: BTreeMap<RsuId, PeriodUpload>,
    /// Highest sequence number accepted per RSU (survives
    /// [`finish_period`](CentralServer::finish_period) so stragglers from
    /// closed periods are recognized as stale).
    upload_seqs: BTreeMap<RsuId, u64>,
    /// Decode caches derived from `uploads` (see [`DecodeCaches`]).
    caches: DecodeCaches,
    /// Observability handle (see [`ObsCell`]); disabled by default.
    obs: ObsCell,
}

impl CentralServer {
    /// Creates a server for a scheme; `history_alpha` is the EWMA
    /// smoothing factor for volume history.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Core`] if `history_alpha` is outside `(0, 1]`
    /// (NaN included).
    pub fn new(scheme: Scheme, history_alpha: f64) -> Result<Self, SimError> {
        if !(history_alpha > 0.0 && history_alpha <= 1.0) {
            return Err(SimError::Core(CoreError::InvalidConfig {
                parameter: "history_alpha",
                reason: format!("must be in (0, 1], got {history_alpha}"),
            }));
        }
        Ok(Self {
            scheme,
            history: VolumeHistory::new(history_alpha),
            uploads: BTreeMap::new(),
            upload_seqs: BTreeMap::new(),
            caches: DecodeCaches::default(),
            obs: ObsCell::default(),
        })
    }

    /// Attaches an observability handle: receive outcomes, decode phase
    /// timings, and kernel selections are recorded through it from now
    /// on. The default handle is disabled ([`Obs::disabled`]), in which
    /// case every instrumentation point is a single pointer check.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = ObsCell(obs);
    }

    /// Builder-style [`set_obs`](Self::set_obs).
    #[must_use]
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.set_obs(obs);
        self
    }

    /// The attached observability handle (disabled unless
    /// [`set_obs`](Self::set_obs) was called).
    #[must_use]
    pub fn obs(&self) -> &Obs {
        &self.obs.0
    }

    /// Seeds an RSU's historical average (e.g. from past traffic
    /// studies) before the first period.
    pub fn seed_history(&mut self, rsu: RsuId, average: f64) {
        self.history.seed(rsu, average);
    }

    /// The volume history (read access).
    #[must_use]
    pub fn history(&self) -> &VolumeHistory {
        &self.history
    }

    /// The scheme configuration.
    #[must_use]
    pub fn scheme(&self) -> &Scheme {
        &self.scheme
    }

    /// Stores one RSU's period upload, reporting how it related to any
    /// upload already held for that RSU: [`Fresh`] (first), [`Duplicate`]
    /// (identical re-send, discarded), or [`Conflicting`] (different
    /// content — replaces the stored upload, but flagged).
    ///
    /// [`Fresh`]: ReceiveOutcome::Fresh
    /// [`Duplicate`]: ReceiveOutcome::Duplicate
    /// [`Conflicting`]: ReceiveOutcome::Conflicting
    pub fn receive(&mut self, upload: PeriodUpload) -> ReceiveOutcome {
        let rsu = upload.rsu;
        let outcome = match self.uploads.get(&rsu) {
            None => {
                self.uploads.insert(rsu, upload);
                self.refresh_caches_for(rsu);
                ReceiveOutcome::Fresh
            }
            Some(prev) if *prev == upload => ReceiveOutcome::Duplicate,
            Some(_) => {
                self.uploads.insert(rsu, upload);
                self.refresh_caches_for(rsu);
                ReceiveOutcome::Conflicting
            }
        };
        self.note_receive(outcome)
    }

    /// Records one receive outcome into the registry (a no-op with
    /// observability disabled) and passes it through.
    fn note_receive(&self, outcome: ReceiveOutcome) -> ReceiveOutcome {
        self.obs.0.inc(receive_counter_name(outcome));
        outcome
    }

    /// Re-derives the decode caches for `rsu` after its upload changed:
    /// extract (or drop) the sparse index list and invalidate every
    /// memoized pair the RSU participates in.
    fn refresh_caches_for(&mut self, rsu: RsuId) {
        let bits = &self.uploads[&rsu].bits;
        if sparse_is_profitable(bits.len(), bits.count_ones()) {
            self.caches
                .sparse_ones
                .insert(rsu, bits.ones().map(|i| i as u64).collect());
        } else {
            self.caches.sparse_ones.remove(&rsu);
        }
        self.caches
            .pair_memo
            .get_mut()
            .expect("pair memo poisoned")
            .retain(|&(a, b), _| a != rsu && b != rsu);
    }

    /// Stores a sequence-numbered upload from the retrying upload path
    /// ([`crate::faults::upload_with_retry`]).
    ///
    /// Sequence numbers are per-RSU and monotone across periods (the
    /// engine uses the period index), which lets the server tell a
    /// harmless retransmission ([`ReceiveOutcome::Duplicate`]) from a
    /// straggler of an already-closed period ([`ReceiveOutcome::Stale`])
    /// — the latter must not resurrect as the *current* period's data.
    pub fn receive_sequenced(&mut self, sequenced: SequencedUpload) -> ReceiveOutcome {
        let rsu = sequenced.upload.rsu;
        let outcome = match self.upload_seqs.get(&rsu).copied() {
            Some(seen) if sequenced.seq < seen => ReceiveOutcome::Stale,
            Some(seen) if sequenced.seq == seen => match self.uploads.get(&rsu) {
                // Same sequence but the period already closed: the upload
                // was folded into history, so a re-send carries nothing.
                None => ReceiveOutcome::Stale,
                Some(prev) if *prev == sequenced.upload => ReceiveOutcome::Duplicate,
                Some(_) => {
                    self.uploads.insert(rsu, sequenced.upload);
                    self.refresh_caches_for(rsu);
                    ReceiveOutcome::Conflicting
                }
            },
            _ => {
                self.upload_seqs.insert(rsu, sequenced.seq);
                self.uploads.insert(rsu, sequenced.upload);
                self.refresh_caches_for(rsu);
                ReceiveOutcome::Fresh
            }
        };
        self.note_receive(outcome)
    }

    /// [`receive_sequenced`](Self::receive_sequenced) over a borrowed
    /// wire view — the zero-copy ingest path (DESIGN.md §18).
    ///
    /// Verdict logic is identical; the difference is allocation
    /// discipline: stale and duplicate frames (the retransmission
    /// steady state) are classified without materializing anything —
    /// duplicate detection compares the view against the stored upload
    /// via [`crate::protocol::PeriodUploadRef::matches`] — and only a
    /// fresh or conflicting frame pays
    /// [`crate::protocol::PeriodUploadRef::to_owned_upload`].
    pub fn receive_sequenced_ref(&mut self, frame: &SequencedUploadRef<'_>) -> ReceiveOutcome {
        let rsu = frame.upload().rsu();
        let outcome = match self.upload_seqs.get(&rsu).copied() {
            Some(seen) if frame.seq() < seen => ReceiveOutcome::Stale,
            Some(seen) if frame.seq() == seen => match self.uploads.get(&rsu) {
                // Same sequence but the period already closed: the upload
                // was folded into history, so a re-send carries nothing.
                None => ReceiveOutcome::Stale,
                Some(prev) if frame.upload().matches(prev) => ReceiveOutcome::Duplicate,
                Some(_) => {
                    self.uploads.insert(rsu, frame.upload().to_owned_upload());
                    self.refresh_caches_for(rsu);
                    ReceiveOutcome::Conflicting
                }
            },
            _ => {
                self.upload_seqs.insert(rsu, frame.seq());
                self.uploads.insert(rsu, frame.upload().to_owned_upload());
                self.refresh_caches_for(rsu);
                ReceiveOutcome::Fresh
            }
        };
        self.note_receive(outcome)
    }

    /// Number of uploads currently held.
    #[must_use]
    pub fn upload_count(&self) -> usize {
        self.uploads.len()
    }

    /// The upload currently held for `rsu`, if any.
    #[must_use]
    pub fn upload(&self, rsu: RsuId) -> Option<&PeriodUpload> {
        self.uploads.get(&rsu)
    }

    /// The RSUs with an upload currently held, in ascending id order.
    pub(crate) fn upload_rsus(&self) -> impl Iterator<Item = RsuId> + '_ {
        self.uploads.keys().copied()
    }

    /// Captures the server's durable state as a wire-serializable
    /// [`ServerCheckpoint`]: history, accepted sequence numbers, and the
    /// open period's uploads. Derived state (decode caches, the
    /// observability handle) is excluded — [`restore_from_checkpoint`]
    /// rebuilds the former and the caller re-attaches the latter, the
    /// same contract the `serde` impls follow.
    ///
    /// [`restore_from_checkpoint`]: Self::restore_from_checkpoint
    #[must_use]
    pub fn checkpoint(&self) -> ServerCheckpoint {
        ServerCheckpoint {
            alpha: self.history.alpha(),
            history: self.history.iter().collect(),
            seqs: self.upload_seqs.iter().map(|(&r, &s)| (r, s)).collect(),
            uploads: self.uploads.values().cloned().collect(),
        }
    }

    /// Rebuilds a server from a [`ServerCheckpoint`] and the
    /// deployment's scheme (checkpoints deliberately do not carry the
    /// scheme: a snapshot is only meaningful to the deployment that
    /// wrote it). Decode caches are re-derived from the restored
    /// uploads; the observability handle starts disabled, exactly as
    /// after a `serde` round trip.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Core`] if the checkpoint's alpha is outside
    /// `(0, 1]` (possible only for hand-built checkpoints — the wire
    /// decoder already rejects it).
    pub fn restore_from_checkpoint(
        scheme: Scheme,
        checkpoint: &ServerCheckpoint,
    ) -> Result<Self, SimError> {
        let mut server = Self::new(scheme, checkpoint.alpha)?;
        for &(rsu, avg) in &checkpoint.history {
            server.history.seed(rsu, avg);
        }
        for &(rsu, seq) in &checkpoint.seqs {
            server.upload_seqs.insert(rsu, seq);
        }
        for upload in &checkpoint.uploads {
            let rsu = upload.rsu;
            server.uploads.insert(rsu, upload.clone());
            server.refresh_caches_for(rsu);
        }
        Ok(server)
    }

    /// Fetches the upload for one side of a pair decode, enforcing the
    /// same validity the sketch-based path did (an array of fewer than
    /// 2 bits cannot be decoded).
    pub(crate) fn decodable_upload(&self, rsu: RsuId) -> Result<&PeriodUpload, SimError> {
        check_decodable(self.uploads.get(&rsu), rsu)
    }

    /// Snapshots everything a pair decode needs about one RSU — upload
    /// reference, cached sparse index list, owning holder — so the
    /// all-pairs loop resolves each RSU's maps *once* instead of paying
    /// ~6 `BTreeMap` lookups per pair (the dominant per-pair cost on
    /// sparse workloads).
    pub(crate) fn prefetch_decode_ref(&self, rsu: RsuId) -> RsuDecodeRef<'_> {
        RsuDecodeRef {
            rsu,
            holder: self,
            upload: self.uploads.get(&rsu),
            ones: self.caches.sparse_ones.get(&rsu).map(Vec::as_slice),
        }
    }

    /// Decodes one pair's sufficient statistics straight from the held
    /// uploads: orient, read the cached zero counts, and compute `U_c`
    /// through the cheapest kernel ([`combined_zero_count_adaptive`])
    /// using whatever sparse index lists the receive path extracted.
    fn pair_counts_uncached(
        &self,
        a: RsuId,
        b: RsuId,
        scratch: &mut DecodeScratch,
    ) -> Result<PairCounts, SimError> {
        self.pair_counts_across(self, a, b, scratch, &self.obs.0)
    }

    /// The cross-holder form of
    /// [`pair_counts_uncached`](Self::pair_counts_uncached): `a`'s upload
    /// and sparse index list come from `self`, `b`'s from `other`. With
    /// `other == self` this *is* the monolithic decode; the sharded
    /// server ([`crate::ShardedServer`]) passes the two shards that own
    /// the pair, borrowing both shards' caches without copying either.
    /// Instrumentation goes to the explicit `obs` handle (the sharded
    /// server's shards carry disabled handles; the composite owns the
    /// real one), so the counters fired per decode are identical on both
    /// paths.
    pub(crate) fn pair_counts_across(
        &self,
        other: &CentralServer,
        a: RsuId,
        b: RsuId,
        scratch: &mut DecodeScratch,
        obs: &Obs,
    ) -> Result<PairCounts, SimError> {
        let ua = self.decodable_upload(a)?;
        let ub = other.decodable_upload(b)?;
        let ones_a = self.caches.sparse_ones.get(&a).map(Vec::as_slice);
        let ones_b = other.caches.sparse_ones.get(&b).map(Vec::as_slice);
        pair_counts_oriented(ua, ones_a, ub, ones_b, scratch, obs)
    }

    /// [`pair_counts_uncached`](Self::pair_counts_uncached) behind the
    /// per-period memo: the first query for a pair decodes it, every
    /// repeat is a map lookup.
    fn pair_counts(&self, a: RsuId, b: RsuId) -> Result<PairCounts, SimError> {
        let key = if a <= b { (a, b) } else { (b, a) };
        if let Some(counts) = self
            .caches
            .pair_memo
            .read()
            .expect("pair memo poisoned")
            .get(&key)
        {
            return Ok(*counts);
        }
        let counts = SCRATCH.with(|s| self.pair_counts_uncached(a, b, &mut s.borrow_mut()))?;
        self.caches
            .pair_memo
            .write()
            .expect("pair memo poisoned")
            .insert(key, counts);
        Ok(counts)
    }

    /// Estimates the point-to-point volume between two uploaded RSUs
    /// (paper Eq. 5).
    ///
    /// The pair's sufficient statistics are decoded once and memoized
    /// for the rest of the period, so repeated queries are O(1) after
    /// first touch.
    ///
    /// # Errors
    ///
    /// * [`SimError::MissingUpload`] if either RSU has not uploaded;
    /// * [`SimError::Core`] for saturation or incompatible sizes.
    pub fn estimate(&self, a: RsuId, b: RsuId) -> Result<Estimate, SimError> {
        Ok(estimate_from_counts(
            &self.pair_counts(a, b)?,
            self.scheme.s(),
        )?)
    }

    /// Like [`estimate`](CentralServer::estimate) but clamps saturated
    /// zero counts instead of failing.
    ///
    /// # Errors
    ///
    /// * [`SimError::MissingUpload`] if either RSU has not uploaded;
    /// * [`SimError::Core`] for incompatible sizes.
    pub fn estimate_or_clamp(&self, a: RsuId, b: RsuId) -> Result<Estimate, SimError> {
        Ok(estimate_from_counts_or_clamp(
            &self.pair_counts(a, b)?,
            self.scheme.s(),
        )?)
    }

    /// Answers a pair query even when uploads are missing: full decode
    /// when both sketches are present ([`PairEstimate::Measured`]),
    /// otherwise a history-backed fallback ([`PairEstimate::Degraded`])
    /// that brackets the overlap with the feasible interval
    /// `[0, min(n̄_x, n̄_y)]`.
    ///
    /// A present side contributes its measured counter; a missing side
    /// contributes its EWMA volume history.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MissingUpload`] only when a side has *neither*
    /// an upload nor any volume history — the server knows nothing at all
    /// about that RSU.
    pub fn estimate_or_degraded(&self, a: RsuId, b: RsuId) -> Result<PairEstimate, SimError> {
        self.estimate_or_degraded_across(self, a, b, || self.pair_counts(a, b))
    }

    /// The shared degradation ladder behind
    /// [`estimate_or_degraded`](Self::estimate_or_degraded) and
    /// [`od_matrix`](Self::od_matrix), parameterized over how the pair's
    /// counts are produced (memoized vs matrix-local scratch) and over
    /// where `b`'s state lives: `self` holds side `a`, `other` holds
    /// side `b` (`other == self` on the monolithic path; the two owning
    /// shards on the sharded one, which keeps each RSU's upload and
    /// history in exactly one place).
    pub(crate) fn estimate_or_degraded_across(
        &self,
        other: &CentralServer,
        a: RsuId,
        b: RsuId,
        counts: impl FnOnce() -> Result<PairCounts, SimError>,
    ) -> Result<PairEstimate, SimError> {
        self.estimate_or_degraded_prefetched(
            &self.prefetch_decode_ref(a),
            &other.prefetch_decode_ref(b),
            counts,
        )
    }

    /// The ladder over prefetched per-RSU refs — what the all-pairs loop
    /// calls directly so no map is re-walked per pair. `self` supplies
    /// the scheme (every shard carries the same one); each side's
    /// history comes from its own holder.
    pub(crate) fn estimate_or_degraded_prefetched(
        &self,
        a: &RsuDecodeRef<'_>,
        b: &RsuDecodeRef<'_>,
        counts: impl FnOnce() -> Result<PairCounts, SimError>,
    ) -> Result<PairEstimate, SimError> {
        match (
            check_decodable(a.upload, a.rsu),
            check_decodable(b.upload, b.rsu),
        ) {
            (Ok(x), Ok(y)) => {
                match counts().and_then(|c| Ok(estimate_from_counts_or_clamp(&c, self.scheme.s())?))
                {
                    Ok(e) => Ok(PairEstimate::Measured(e)),
                    // Uploads present but not comparable (e.g. a corrupted
                    // size that slipped through): counters still bound the
                    // overlap, so degrade rather than fail.
                    Err(_) => Ok(PairEstimate::Degraded(DegradedEstimate::from_volumes(
                        x.counter as f64,
                        y.counter as f64,
                        false,
                        false,
                    ))),
                }
            }
            (ra, rb) => {
                let missing_a = ra.is_err();
                let missing_b = rb.is_err();
                let volume_of = |d: &RsuDecodeRef<'_>, r: Result<&PeriodUpload, SimError>| match r {
                    Ok(u) => Ok(u.counter as f64),
                    Err(_) => d
                        .holder
                        .history
                        .average(d.rsu)
                        .ok_or(SimError::MissingUpload { rsu: d.rsu }),
                };
                let va = volume_of(a, ra)?;
                let vb = volume_of(b, rb)?;
                Ok(PairEstimate::Degraded(DegradedEstimate::from_volumes(
                    va, vb, missing_a, missing_b,
                )))
            }
        }
    }

    /// Computes the full origin–destination matrix for every RSU the
    /// server knows about — current uploads and volume history alike —
    /// with one worker per available core (see
    /// [`od_matrix_threads`](Self::od_matrix_threads)).
    ///
    /// # Errors
    ///
    /// As [`od_matrix_threads`](Self::od_matrix_threads).
    pub fn od_matrix(&self) -> Result<OdMatrix, SimError> {
        self.od_matrix_threads(crate::concurrent::default_threads())
    }

    /// [`od_matrix`](Self::od_matrix) with an explicit worker count.
    ///
    /// The pair triangle fans out through
    /// [`parallel_map_threads`](crate::concurrent::parallel_map_threads)
    /// — persistent-pool workers claiming index ranges of the triangle
    /// in cache-friendly chunks (consecutive pairs share their `i`-side
    /// upload). Each RSU's upload reference and sparse index list are
    /// prefetched *once* into a [`RsuDecodeRef`] table before the fan-
    /// out, so the per-pair work is pure kernel time with no map
    /// lookups; each worker reuses one decode scratch across all its
    /// pairs. When the estimated triangle work ([`od_effective_threads`])
    /// is too small to repay a pool dispatch, the whole triangle runs
    /// inline on the caller — small matrices can never lose to the
    /// 1-thread path. Entries are exactly what
    /// [`estimate_or_degraded`](Self::estimate_or_degraded) returns for
    /// the pair — measured where both uploads are decodable, degraded
    /// where history must fill in. The batch path deliberately bypasses
    /// the single-pair memo: it never re-reads a pair, and N²/2 lock
    /// round-trips would serialize the workers.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MissingUpload`] if some covered pair has a
    /// side with neither an upload nor history (cannot happen for RSUs
    /// discovered from those two sources — defensive only).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or a worker thread panics.
    pub fn od_matrix_threads(&self, threads: usize) -> Result<OdMatrix, SimError> {
        let _timer = self.obs.0.phase(Phase::OdMatrix);
        let rsus: Vec<RsuId> = self
            .uploads
            .keys()
            .copied()
            .chain(self.history.iter().map(|(rsu, _)| rsu))
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        let n = rsus.len();
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| (i + 1..n).map(move |j| (i, j)))
            .collect();
        self.obs.0.add("od_matrix.pairs", pairs.len() as u64);
        let pre: Vec<RsuDecodeRef<'_>> = rsus
            .iter()
            .map(|&rsu| self.prefetch_decode_ref(rsu))
            .collect();
        let threads = od_effective_threads(threads, &pre, pairs.len());
        let computed =
            crate::concurrent::parallel_map_threads(pairs.clone(), threads, |&(i, j)| {
                let (a, b) = (&pre[i], &pre[j]);
                self.estimate_or_degraded_prefetched(a, b, || {
                    with_thread_scratch(|s| pair_counts_prefetched(a, b, s, &self.obs.0))
                })
            });
        OdMatrix::from_pair_estimates(rsus, &pairs, computed)
    }

    /// Ends the period: folds every upload's counter into the volume
    /// history, clears the uploads, and returns the array size each RSU
    /// should use next period.
    ///
    /// Sequence-number bookkeeping survives, so stragglers from the
    /// closed period are still recognized as stale.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Core`] if a size computation fails.
    pub fn finish_period(&mut self) -> Result<BTreeMap<RsuId, usize>, SimError> {
        self.obs.0.inc("server.finish_period.calls");
        let mut sizes = BTreeMap::new();
        for (&rsu, upload) in &self.uploads {
            self.history.update(rsu, upload.counter as f64);
        }
        for (rsu, average) in self.history.iter() {
            sizes.insert(rsu, self.scheme.array_size_for(average)?);
        }
        self.uploads.clear();
        // The decode caches were derived from the uploads just folded
        // away; nothing of them may survive into the next period.
        self.caches.sparse_ones.clear();
        self.caches
            .pair_memo
            .get_mut()
            .expect("pair memo poisoned")
            .clear();
        Ok(sizes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcps_bitarray::BitArray;

    fn upload(rsu: u64, m: usize, ones: &[usize], counter: u64) -> PeriodUpload {
        let mut bits = BitArray::new(m);
        for &i in ones {
            bits.set(i);
        }
        PeriodUpload {
            rsu: RsuId(rsu),
            counter,
            bits,
        }
    }

    fn server() -> CentralServer {
        CentralServer::new(Scheme::variable(2, 3.0, 1).unwrap(), 0.5).unwrap()
    }

    #[test]
    fn new_rejects_out_of_range_alpha() {
        let scheme = Scheme::variable(2, 3.0, 1).unwrap();
        for alpha in [0.0, -0.5, 1.5, f64::NAN, f64::INFINITY] {
            let err = CentralServer::new(scheme.clone(), alpha);
            assert!(err.is_err(), "alpha {alpha} must be rejected");
        }
        assert!(CentralServer::new(scheme.clone(), 1.0).is_ok());
        assert!(CentralServer::new(scheme, 0.01).is_ok());
    }

    #[test]
    fn estimate_requires_uploads() {
        let server = server();
        assert_eq!(
            server.estimate(RsuId(1), RsuId(2)),
            Err(SimError::MissingUpload { rsu: RsuId(1) })
        );
    }

    #[test]
    fn estimate_decodes_uploaded_pair() {
        let mut server = server();
        server.receive(upload(1, 64, &[1, 5], 2));
        server.receive(upload(2, 256, &[1, 70], 2));
        let e = server.estimate(RsuId(1), RsuId(2)).unwrap();
        assert!(e.n_c.is_finite());
        assert_eq!(e.m_x, 64);
        assert_eq!(e.m_y, 256);
    }

    #[test]
    fn receive_classifies_fresh_duplicate_conflicting() {
        let mut server = server();
        assert_eq!(server.receive(upload(1, 64, &[], 2)), ReceiveOutcome::Fresh);
        assert_eq!(
            server.receive(upload(1, 64, &[], 2)),
            ReceiveOutcome::Duplicate
        );
        assert_eq!(
            server.receive(upload(1, 64, &[3], 9)),
            ReceiveOutcome::Conflicting
        );
        // Conflicting content replaced the stored upload.
        assert_eq!(server.upload(RsuId(1)).unwrap().counter, 9);
        assert_eq!(server.upload_count(), 1);
    }

    #[test]
    fn re_upload_replaces_previous() {
        let mut server = server();
        server.receive(upload(1, 64, &[], 2));
        server.receive(upload(1, 64, &[3], 9));
        assert_eq!(server.upload_count(), 1);
        let sizes = server.finish_period().unwrap();
        // History saw 9, not 2: 9 × 3 = 27 → 32.
        assert_eq!(sizes[&RsuId(1)], 32);
    }

    #[test]
    fn sequenced_uploads_dedup_and_age_out() {
        let mut server = server();
        let wrap = |seq, up| SequencedUpload { seq, upload: up };
        assert_eq!(
            server.receive_sequenced(wrap(0, upload(1, 64, &[1], 5))),
            ReceiveOutcome::Fresh
        );
        assert_eq!(
            server.receive_sequenced(wrap(0, upload(1, 64, &[1], 5))),
            ReceiveOutcome::Duplicate
        );
        assert_eq!(
            server.receive_sequenced(wrap(0, upload(1, 64, &[2], 5))),
            ReceiveOutcome::Conflicting
        );
        // Next period: higher sequence is fresh again…
        assert_eq!(
            server.receive_sequenced(wrap(1, upload(1, 64, &[9], 7))),
            ReceiveOutcome::Fresh
        );
        // …and the old sequence is stale, leaving the new data intact.
        assert_eq!(
            server.receive_sequenced(wrap(0, upload(1, 64, &[1], 5))),
            ReceiveOutcome::Stale
        );
        assert_eq!(server.upload(RsuId(1)).unwrap().counter, 7);
    }

    #[test]
    fn sequenced_straggler_after_finish_period_is_stale() {
        let mut server = server();
        let wrap = |seq, up| SequencedUpload { seq, upload: up };
        server.receive_sequenced(wrap(3, upload(1, 64, &[1], 5)));
        server.finish_period().unwrap();
        assert_eq!(server.upload_count(), 0);
        // A re-send of the already-folded upload must not resurrect it as
        // current-period data.
        assert_eq!(
            server.receive_sequenced(wrap(3, upload(1, 64, &[1], 5))),
            ReceiveOutcome::Stale
        );
        assert_eq!(server.upload_count(), 0);
    }

    #[test]
    fn finish_period_updates_history_and_clears() {
        let mut server = CentralServer::new(Scheme::variable(2, 3.0, 1).unwrap(), 1.0).unwrap();
        server.seed_history(RsuId(1), 100.0);
        server.receive(upload(1, 64, &[], 1000));
        let sizes = server.finish_period().unwrap();
        assert_eq!(server.upload_count(), 0);
        // alpha = 1: history = last observation = 1000 → 3000 → 4096.
        assert_eq!(sizes[&RsuId(1)], 4096);
        assert_eq!(server.history().average(RsuId(1)), Some(1000.0));
    }

    #[test]
    fn seeded_rsus_get_sizes_without_uploads() {
        let mut server = server();
        server.seed_history(RsuId(9), 500.0);
        let sizes = server.finish_period().unwrap();
        assert_eq!(sizes[&RsuId(9)], 2048); // 1500 → 2^11
    }

    #[test]
    fn fixed_scheme_sizes_are_constant() {
        let mut server = CentralServer::new(Scheme::fixed(2, 4096, 1).unwrap(), 0.5).unwrap();
        server.receive(upload(1, 4096, &[], 10));
        server.receive(upload(2, 4096, &[], 1_000_000));
        let sizes = server.finish_period().unwrap();
        assert!(sizes.values().all(|&m| m == 4096));
    }

    #[test]
    fn zero_counter_uploads_estimate_to_zero_overlap() {
        // Empty arrays and zero counters are a legal (if dull) period:
        // the decode must produce 0, not NaN or an error.
        let mut server = server();
        server.receive(upload(1, 64, &[], 0));
        server.receive(upload(2, 64, &[], 0));
        let e = server.estimate(RsuId(1), RsuId(2)).unwrap();
        assert_eq!(e.n_c, 0.0);
        assert!(e.n_c.is_finite());
        let p = server.estimate_or_degraded(RsuId(1), RsuId(2)).unwrap();
        assert!(!p.is_degraded());
        assert_eq!(p.n_c(), 0.0);
    }

    #[test]
    fn degraded_fallback_uses_history_for_missing_side() {
        let mut server = server();
        server.seed_history(RsuId(2), 80.0);
        server.receive(upload(1, 64, &[1, 2], 50));
        // RSU 2 never uploaded: degraded answer bounded by min(50, 80).
        let p = server.estimate_or_degraded(RsuId(1), RsuId(2)).unwrap();
        assert!(p.is_degraded());
        assert!(p.measured().is_none());
        match p {
            PairEstimate::Degraded(d) => {
                assert!(!d.missing_x);
                assert!(d.missing_y);
                assert_eq!(d.upper, 50.0);
                assert_eq!(d.lower, 0.0);
                assert_eq!(d.n_c, 25.0);
            }
            PairEstimate::Measured(_) => unreachable!(),
        }
    }

    #[test]
    fn degraded_fallback_with_both_sides_missing() {
        let mut server = server();
        server.seed_history(RsuId(1), 40.0);
        server.seed_history(RsuId(2), 60.0);
        let p = server.estimate_or_degraded(RsuId(1), RsuId(2)).unwrap();
        match p {
            PairEstimate::Degraded(d) => {
                assert!(d.missing_x && d.missing_y);
                assert_eq!(d.upper, 40.0);
            }
            PairEstimate::Measured(_) => unreachable!(),
        }
    }

    #[test]
    fn degraded_fallback_fails_only_with_no_knowledge_at_all() {
        let server = server();
        assert_eq!(
            server.estimate_or_degraded(RsuId(1), RsuId(2)),
            Err(SimError::MissingUpload { rsu: RsuId(1) })
        );
    }

    #[test]
    fn repeated_estimates_hit_the_pair_memo() {
        let mut server = server();
        server.receive(upload(1, 64, &[1, 5], 2));
        server.receive(upload(2, 256, &[1, 70], 2));
        let first = server.estimate(RsuId(1), RsuId(2)).unwrap();
        assert!(server
            .caches
            .pair_memo
            .read()
            .unwrap()
            .get(&(RsuId(1), RsuId(2)))
            .is_some());
        // Repeat in both argument orders: same memo entry, same answer.
        assert_eq!(server.estimate(RsuId(2), RsuId(1)).unwrap(), first);
        assert_eq!(server.caches.pair_memo.read().unwrap().len(), 1);
        assert_eq!(server.estimate_or_clamp(RsuId(1), RsuId(2)).unwrap(), first);
    }

    #[test]
    fn new_upload_invalidates_only_its_pairs() {
        let mut server = server();
        server.receive(upload(1, 64, &[1], 1));
        server.receive(upload(2, 64, &[2], 1));
        server.receive(upload(3, 64, &[3], 1));
        server.estimate(RsuId(1), RsuId(2)).unwrap();
        server.estimate(RsuId(2), RsuId(3)).unwrap();
        assert_eq!(server.caches.pair_memo.read().unwrap().len(), 2);
        // RSU 3 re-uploads: the (2,3) entry must go, (1,2) must stay.
        server.receive(upload(3, 64, &[3, 9], 2));
        let memo = server.caches.pair_memo.read().unwrap();
        assert!(memo.contains_key(&(RsuId(1), RsuId(2))));
        assert!(!memo.contains_key(&(RsuId(2), RsuId(3))));
        drop(memo);
        // And the refreshed pair decodes against the new content.
        let e = server.estimate(RsuId(2), RsuId(3)).unwrap();
        assert_eq!(e.n_y, 2);
    }

    #[test]
    fn sparse_cache_tracks_the_densify_threshold() {
        let mut server = server();
        // 2 ones in 256 bits (4 words): sparse.
        server.receive(upload(1, 256, &[1, 200], 2));
        assert_eq!(
            server.caches.sparse_ones.get(&RsuId(1)),
            Some(&vec![1u64, 200])
        );
        // Re-upload above the threshold: list dropped.
        server.receive(upload(
            1,
            256,
            &(0..8).map(|i| i * 30).collect::<Vec<_>>(),
            8,
        ));
        assert!(!server.caches.sparse_ones.contains_key(&RsuId(1)));
        // finish_period clears everything.
        server.receive(upload(2, 256, &[7], 1));
        server.estimate(RsuId(1), RsuId(2)).unwrap();
        server.finish_period().unwrap();
        assert!(server.caches.sparse_ones.is_empty());
        assert!(server.caches.pair_memo.read().unwrap().is_empty());
    }

    #[test]
    fn od_matrix_matches_pairwise_estimates() {
        let mut server = server();
        server.seed_history(RsuId(9), 120.0); // history-only RSU
        server.receive(upload(1, 64, &[1, 5], 7));
        server.receive(upload(2, 256, &[1, 70, 200], 9));
        server.receive(upload(3, 64, &[2], 1));
        let matrix = server.od_matrix().unwrap();
        assert_eq!(
            matrix.rsus(),
            &[RsuId(1), RsuId(2), RsuId(3), RsuId(9)],
            "uploads and history-only RSUs are both covered"
        );
        assert_eq!(matrix.len(), 4);
        assert!(!matrix.is_empty());
        for i in 0..matrix.len() {
            assert!(matrix.at(i, i).is_none(), "diagonal is undefined");
            for j in 0..matrix.len() {
                if i == j {
                    continue;
                }
                let (a, b) = (matrix.rsus()[i], matrix.rsus()[j]);
                let pairwise = server.estimate_or_degraded(a, b).unwrap();
                assert_eq!(matrix.at(i, j), Some(&pairwise), "entry ({i}, {j})");
                assert_eq!(
                    matrix.at(i, j).map(PairEstimate::transposed).as_ref(),
                    matrix.at(j, i),
                    "mirror symmetry up to role swap"
                );
                assert_eq!(matrix.get(a, b), Some(&pairwise));
            }
        }
        // The history-only column is degraded, the upload pairs measured.
        assert!(matrix.get(RsuId(1), RsuId(9)).unwrap().is_degraded());
        assert!(!matrix.get(RsuId(1), RsuId(2)).unwrap().is_degraded());
        assert_eq!(matrix.iter_pairs().count(), 6);
        assert_eq!(matrix.get(RsuId(1), RsuId(1)), None);
        assert_eq!(matrix.get(RsuId(1), RsuId(77)), None);
    }

    #[test]
    fn od_matrix_is_identical_across_thread_counts() {
        let mut server = server();
        for r in 0..12u64 {
            let ones: Vec<usize> = (0..(r as usize * 3) % 7)
                .map(|k| (k * 11 + 1) % 64)
                .collect();
            server.receive(upload(r, 64, &ones, ones.len() as u64));
        }
        let reference = server.od_matrix_threads(1).unwrap();
        for threads in [2, 4, 8] {
            assert_eq!(server.od_matrix_threads(threads).unwrap(), reference);
        }
    }

    #[test]
    fn od_matrix_of_empty_server_is_empty() {
        let server = server();
        let matrix = server.od_matrix().unwrap();
        assert!(matrix.is_empty());
        assert_eq!(matrix.iter_pairs().count(), 0);
    }

    #[test]
    fn measured_beats_degraded_when_both_uploads_arrive() {
        let mut server = server();
        server.seed_history(RsuId(1), 9999.0);
        server.seed_history(RsuId(2), 9999.0);
        server.receive(upload(1, 64, &[1, 5], 2));
        server.receive(upload(2, 256, &[1, 70], 2));
        let p = server.estimate_or_degraded(RsuId(1), RsuId(2)).unwrap();
        assert!(!p.is_degraded());
        assert!(p.measured().is_some());
    }

    #[test]
    fn observability_never_changes_answers() {
        // Obs-on results (estimates and the full O-D matrix) must be
        // bit-identical to obs-off, across thread counts.
        let feed = |server: &mut CentralServer| {
            for r in 0..10u64 {
                let ones: Vec<usize> = (0..(r as usize * 5) % 9)
                    .map(|k| (k * 13 + 2) % 64)
                    .collect();
                server.receive(upload(r, 64, &ones, ones.len() as u64 + 1));
            }
        };
        let mut plain = server();
        feed(&mut plain);
        let mut observed = server().with_obs(vcps_obs::Obs::enabled(vcps_obs::Level::Trace));
        feed(&mut observed);
        assert_eq!(
            plain.estimate_or_clamp(RsuId(1), RsuId(2)).unwrap(),
            observed.estimate_or_clamp(RsuId(1), RsuId(2)).unwrap()
        );
        for threads in [1, 2, 4] {
            assert_eq!(
                plain.od_matrix_threads(threads).unwrap(),
                observed.od_matrix_threads(threads).unwrap(),
                "threads = {threads}"
            );
        }
        // PartialEq ignores the obs handle, like the decode caches.
        assert_eq!(plain, observed);
    }

    #[test]
    fn obs_records_receive_outcomes_and_kernel_choices() {
        let mut server = server().with_obs(vcps_obs::Obs::enabled(vcps_obs::Level::Info));
        server.receive(upload(1, 64, &[1, 5], 2));
        server.receive(upload(1, 64, &[1, 5], 2)); // duplicate
        server.receive(upload(1, 64, &[1, 9], 2)); // conflicting
        server.receive(upload(2, 256, &[3], 1));
        let _ = server.estimate_or_clamp(RsuId(1), RsuId(2)).unwrap();
        let _ = server.estimate_or_clamp(RsuId(1), RsuId(2)).unwrap(); // memo hit
        let snap = server.obs().snapshot();
        assert_eq!(snap.counters["server.receive.fresh"], 2);
        assert_eq!(snap.counters["server.receive.duplicate"], 1);
        assert_eq!(snap.counters["server.receive.conflicting"], 1);
        // One uncached decode: exactly one kernel counter bump and one
        // decode phase sample (the memoized repeat records nothing).
        assert_eq!(
            snap.counters_with_prefix("kernel.").values().sum::<u64>(),
            1
        );
        assert_eq!(snap.histograms["phase.decode.ns"].count, 1);
        assert_eq!(snap.counters["phase.decode.calls"], 1);
    }
}
