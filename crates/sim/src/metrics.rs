//! Communication-overhead accounting.
//!
//! The paper analyzes computation cost (§IV-E) but not communication;
//! for a deployment study the wire budget matters just as much. This
//! module counts messages and bytes for a measurement period:
//! queries (RSU → broadcast), bit reports (vehicle → RSU), and
//! end-of-period uploads (RSU → server), in both the dense and
//! compact ([`PeriodUpload::encode_compact`]) forms.

use serde::{Deserialize, Serialize};

use crate::protocol::{BitReport, PeriodUpload, Query};

/// Message and byte counters for one measurement period.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CommunicationMetrics {
    /// Queries answered (one per vehicle per RSU passage).
    pub queries: u64,
    /// Bit reports transmitted.
    pub reports: u64,
    /// Period uploads transmitted.
    pub uploads: u64,
    /// Bytes of query frames received by vehicles.
    pub query_bytes: u64,
    /// Bytes of report frames received by RSUs.
    pub report_bytes: u64,
    /// Upload bytes with the dense encoding.
    pub upload_bytes_dense: u64,
    /// Upload bytes with the size-adaptive encoding.
    pub upload_bytes_compact: u64,
}

impl CommunicationMetrics {
    /// Creates zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Accounts one query/report exchange.
    pub fn record_exchange(&mut self, query: &Query, report: &BitReport) {
        self.queries += 1;
        self.reports += 1;
        self.query_bytes += query.encode().len() as u64;
        self.report_bytes += report.encode().len() as u64;
    }

    /// Accounts one period upload (both encodings, for comparison).
    pub fn record_upload(&mut self, upload: &PeriodUpload) {
        self.uploads += 1;
        self.upload_bytes_dense += upload.encode().len() as u64;
        self.upload_bytes_compact += upload.encode_compact().len() as u64;
    }

    /// Vehicle-side bytes per passage (query down + report up); `0`
    /// before any exchange.
    #[must_use]
    pub fn bytes_per_passage(&self) -> f64 {
        if self.reports == 0 {
            0.0
        } else {
            (self.query_bytes + self.report_bytes) as f64 / self.reports as f64
        }
    }

    /// Fraction of upload bytes saved by the compact encoding.
    #[must_use]
    pub fn upload_savings(&self) -> f64 {
        if self.upload_bytes_dense == 0 {
            0.0
        } else {
            1.0 - self.upload_bytes_compact as f64 / self.upload_bytes_dense as f64
        }
    }

    /// Merges counters from another period or a parallel worker.
    pub fn merge(&mut self, other: &CommunicationMetrics) {
        self.queries += other.queries;
        self.reports += other.reports;
        self.uploads += other.uploads;
        self.query_bytes += other.query_bytes;
        self.report_bytes += other.report_bytes;
        self.upload_bytes_dense += other.upload_bytes_dense;
        self.upload_bytes_compact += other.upload_bytes_compact;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pki::TrustedAuthority;
    use crate::MacAddress;
    use vcps_bitarray::BitArray;
    use vcps_core::RsuId;

    fn sample_query() -> Query {
        let ca = TrustedAuthority::new(1);
        Query {
            rsu: RsuId(1),
            certificate: ca.issue(RsuId(1)),
            array_size: 1024,
        }
    }

    #[test]
    fn exchange_accounting() {
        let mut m = CommunicationMetrics::new();
        let report = BitReport {
            mac: MacAddress([2, 0, 0, 0, 0, 1]),
            index: 5,
        };
        m.record_exchange(&sample_query(), &report);
        m.record_exchange(&sample_query(), &report);
        assert_eq!(m.queries, 2);
        assert_eq!(m.reports, 2);
        // Query frame: 33 bytes; report frame: 15 bytes.
        assert_eq!(m.bytes_per_passage(), 48.0);
    }

    #[test]
    fn upload_accounting_shows_compact_savings() {
        let mut m = CommunicationMetrics::new();
        let mut bits = BitArray::new(1 << 14);
        bits.set(7);
        m.record_upload(&PeriodUpload {
            rsu: RsuId(1),
            counter: 1,
            bits,
        });
        assert_eq!(m.uploads, 1);
        assert!(m.upload_bytes_compact < m.upload_bytes_dense);
        assert!(m.upload_savings() > 0.9);
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = CommunicationMetrics {
            queries: 1,
            reports: 1,
            uploads: 1,
            query_bytes: 10,
            report_bytes: 20,
            upload_bytes_dense: 30,
            upload_bytes_compact: 15,
        };
        a.merge(&a.clone());
        assert_eq!(a.queries, 2);
        assert_eq!(a.upload_bytes_dense, 60);
    }

    #[test]
    fn empty_metrics_have_safe_ratios() {
        let m = CommunicationMetrics::new();
        assert_eq!(m.bytes_per_passage(), 0.0);
        assert_eq!(m.upload_savings(), 0.0);
    }
}
