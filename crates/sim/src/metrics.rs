//! Communication-overhead accounting.
//!
//! The paper analyzes computation cost (§IV-E) but not communication;
//! for a deployment study the wire budget matters just as much. This
//! module counts messages and bytes for a measurement period:
//! queries (RSU → broadcast), bit reports (vehicle → RSU), and
//! end-of-period uploads (RSU → server), in both the dense and
//! compact ([`PeriodUpload::encode_compact`]) forms.

use serde::{Deserialize, Serialize};

use crate::protocol::{BitReport, PeriodUpload, Query};

/// Message and byte counters for one measurement period.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CommunicationMetrics {
    /// Queries answered (one per vehicle per RSU passage).
    pub queries: u64,
    /// Bit reports transmitted.
    pub reports: u64,
    /// Period uploads transmitted.
    pub uploads: u64,
    /// Bytes of query frames received by vehicles.
    pub query_bytes: u64,
    /// Bytes of report frames received by RSUs.
    pub report_bytes: u64,
    /// Upload bytes with the dense encoding.
    pub upload_bytes_dense: u64,
    /// Upload bytes with the size-adaptive encoding.
    pub upload_bytes_compact: u64,
}

impl CommunicationMetrics {
    /// Creates zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Accounts one query/report exchange.
    pub fn record_exchange(&mut self, query: &Query, report: &BitReport) {
        self.queries += 1;
        self.reports += 1;
        self.query_bytes += query.encode().len() as u64;
        self.report_bytes += report.encode().len() as u64;
    }

    /// Accounts one period upload (both encodings, for comparison).
    pub fn record_upload(&mut self, upload: &PeriodUpload) {
        self.uploads += 1;
        self.upload_bytes_dense += upload.encode().len() as u64;
        self.upload_bytes_compact += upload.encode_compact().len() as u64;
    }

    /// Vehicle-side bytes per passage (query down + report up), or
    /// `None` before any exchange.
    ///
    /// Earlier versions returned a `0.0` sentinel, which silently
    /// dragged down averages when merged-period tables mixed idle and
    /// busy periods; callers must now decide how to render "no data"
    /// (the experiment tables print `n/a`).
    #[must_use]
    pub fn bytes_per_passage(&self) -> Option<f64> {
        if self.reports == 0 {
            None
        } else {
            Some((self.query_bytes + self.report_bytes) as f64 / self.reports as f64)
        }
    }

    /// Fraction of upload bytes saved by the compact encoding, or `None`
    /// before any upload (previously a misleading `0.0` sentinel — "no
    /// uploads" is not "zero savings").
    #[must_use]
    pub fn upload_savings(&self) -> Option<f64> {
        if self.upload_bytes_dense == 0 {
            None
        } else {
            Some(1.0 - self.upload_bytes_compact as f64 / self.upload_bytes_dense as f64)
        }
    }

    /// Merges counters from another period or a parallel worker.
    pub fn merge(&mut self, other: &CommunicationMetrics) {
        self.queries += other.queries;
        self.reports += other.reports;
        self.uploads += other.uploads;
        self.query_bytes += other.query_bytes;
        self.report_bytes += other.report_bytes;
        self.upload_bytes_dense += other.upload_bytes_dense;
        self.upload_bytes_compact += other.upload_bytes_compact;
    }
}

/// Per-link fault counters: what the channel did to the frames that
/// crossed it (see [`crate::faults::Channel`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LinkMetrics {
    /// Frames offered to the link.
    pub frames: u64,
    /// Frame copies actually handed to the receiver (duplication can
    /// push this above `frames`; loss pulls it below).
    pub delivered: u64,
    /// Frames dropped outright.
    pub dropped: u64,
    /// Extra copies injected by duplication.
    pub duplicated: u64,
    /// Frames delivered too late to count (reordered past the period
    /// boundary) and therefore discarded by the receiver.
    pub late: u64,
    /// Delivered copies that lost their tail bytes.
    pub truncated: u64,
    /// Delivered copies with a flipped bit.
    pub bit_flipped: u64,
}

impl LinkMetrics {
    /// Merges counters from another worker or period.
    pub fn merge(&mut self, other: &LinkMetrics) {
        self.frames += other.frames;
        self.delivered += other.delivered;
        self.dropped += other.dropped;
        self.duplicated += other.duplicated;
        self.late += other.late;
        self.truncated += other.truncated;
        self.bit_flipped += other.bit_flipped;
    }

    /// Fraction of offered frames that never reached the receiver
    /// (dropped or late), or `None` before any traffic (a `0.0` sentinel
    /// here read as "perfect link" for links that carried nothing).
    #[must_use]
    pub fn loss_fraction(&self) -> Option<f64> {
        if self.frames == 0 {
            None
        } else {
            Some((self.dropped + self.late) as f64 / self.frames as f64)
        }
    }
}

/// End-to-end fault accounting for one measurement period: what the two
/// lossy links did, what the receivers rejected, what the crash model
/// destroyed, and how the upload retry loop fared.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultMetrics {
    /// The vehicle → RSU report link.
    pub report_link: LinkMetrics,
    /// The RSU → server upload link (counts every attempt, including
    /// retransmissions).
    pub upload_link: LinkMetrics,
    /// Delivered report frames the RSU could not decode (corruption
    /// broke the wire format).
    pub reports_undecodable: u64,
    /// Decoded reports rejected for an out-of-range index (corruption
    /// survived the format but not validation).
    pub reports_rejected: u64,
    /// Reports destroyed by RSU crashes (received before the crash,
    /// after the last checkpoint).
    pub reports_lost_to_crash: u64,
    /// RSU crash events that fired.
    pub crashes: u64,
    /// Upload attempts (first sends plus retransmissions).
    pub upload_attempts: u64,
    /// Retransmissions alone.
    pub upload_retries: u64,
    /// Acks lost on the return path (the upload arrived but the RSU
    /// retried anyway).
    pub acks_lost: u64,
    /// Uploads abandoned after exhausting the retry budget.
    pub uploads_abandoned: u64,
    /// Simulated seconds spent in retry backoff across all RSUs.
    pub backoff_seconds: f64,
    /// Re-sent uploads the server recognized and discarded idempotently.
    pub upload_duplicates: u64,
    /// Same-sequence uploads whose content differed (corruption that
    /// still parsed, or an equivocating RSU).
    pub upload_conflicts: u64,
    /// Uploads with a stale sequence number (late arrivals from an
    /// earlier period), ignored.
    pub upload_stale: u64,
}

impl FaultMetrics {
    /// Creates zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges counters from another worker or period.
    pub fn merge(&mut self, other: &FaultMetrics) {
        self.report_link.merge(&other.report_link);
        self.upload_link.merge(&other.upload_link);
        self.reports_undecodable += other.reports_undecodable;
        self.reports_rejected += other.reports_rejected;
        self.reports_lost_to_crash += other.reports_lost_to_crash;
        self.crashes += other.crashes;
        self.upload_attempts += other.upload_attempts;
        self.upload_retries += other.upload_retries;
        self.acks_lost += other.acks_lost;
        self.uploads_abandoned += other.uploads_abandoned;
        self.backoff_seconds += other.backoff_seconds;
        self.upload_duplicates += other.upload_duplicates;
        self.upload_conflicts += other.upload_conflicts;
        self.upload_stale += other.upload_stale;
    }
}

// ---------------------------------------------------------------------
// Bridges into the unified metrics registry (`vcps-obs`).
//
// The three structs above predate the registry and keep their typed,
// serializable shape for return values; `record_into` folds each into
// registry counters so one `RegistrySnapshot` (with its associative,
// commutative merge) carries a whole run's story instead of three
// bespoke `merge` implementations. Counter semantics are identical:
// every field adds, so recording per-worker structs into a shared
// registry commutes exactly like the hand-rolled merges did.
// ---------------------------------------------------------------------

impl CommunicationMetrics {
    /// Folds these counters into `obs` under the `comm.` prefix (no-op
    /// when `obs` is disabled).
    pub fn record_into(&self, obs: &vcps_obs::Obs) {
        if !obs.is_enabled() {
            return;
        }
        obs.add("comm.queries", self.queries);
        obs.add("comm.reports", self.reports);
        obs.add("comm.uploads", self.uploads);
        obs.add("comm.query_bytes", self.query_bytes);
        obs.add("comm.report_bytes", self.report_bytes);
        obs.add("comm.upload_bytes_dense", self.upload_bytes_dense);
        obs.add("comm.upload_bytes_compact", self.upload_bytes_compact);
    }
}

impl LinkMetrics {
    /// Folds these counters into `obs` under `faults.<link>.` for the
    /// given link name (no-op when `obs` is disabled).
    pub fn record_into(&self, obs: &vcps_obs::Obs, link: &str) {
        if !obs.is_enabled() {
            return;
        }
        let put = |field: &str, v: u64| obs.add(&format!("faults.{link}.{field}"), v);
        put("frames", self.frames);
        put("delivered", self.delivered);
        put("dropped", self.dropped);
        put("duplicated", self.duplicated);
        put("late", self.late);
        put("truncated", self.truncated);
        put("bit_flipped", self.bit_flipped);
    }
}

impl FaultMetrics {
    /// Folds these counters into `obs` under the `faults.` prefix; the
    /// accumulated simulated backoff is also recorded as a microsecond
    /// histogram sample (no-op when `obs` is disabled).
    pub fn record_into(&self, obs: &vcps_obs::Obs) {
        if !obs.is_enabled() {
            return;
        }
        self.report_link.record_into(obs, "report_link");
        self.upload_link.record_into(obs, "upload_link");
        obs.add("faults.reports_undecodable", self.reports_undecodable);
        obs.add("faults.reports_rejected", self.reports_rejected);
        obs.add("faults.reports_lost_to_crash", self.reports_lost_to_crash);
        obs.add("faults.crashes", self.crashes);
        obs.add("faults.upload_attempts", self.upload_attempts);
        obs.add("faults.upload_retries", self.upload_retries);
        obs.add("faults.acks_lost", self.acks_lost);
        obs.add("faults.uploads_abandoned", self.uploads_abandoned);
        obs.add("faults.upload_duplicates", self.upload_duplicates);
        obs.add("faults.upload_conflicts", self.upload_conflicts);
        obs.add("faults.upload_stale", self.upload_stale);
        if self.backoff_seconds > 0.0 {
            obs.observe(
                "faults.backoff_us",
                (self.backoff_seconds * 1e6).round() as u64,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pki::TrustedAuthority;
    use crate::MacAddress;
    use vcps_bitarray::BitArray;
    use vcps_core::RsuId;

    fn sample_query() -> Query {
        let ca = TrustedAuthority::new(1);
        Query {
            rsu: RsuId(1),
            certificate: ca.issue(RsuId(1)),
            array_size: 1024,
        }
    }

    #[test]
    fn exchange_accounting() {
        let mut m = CommunicationMetrics::new();
        let report = BitReport {
            mac: MacAddress([2, 0, 0, 0, 0, 1]),
            index: 5,
        };
        m.record_exchange(&sample_query(), &report);
        m.record_exchange(&sample_query(), &report);
        assert_eq!(m.queries, 2);
        assert_eq!(m.reports, 2);
        // Query frame: 33 bytes; report frame: 15 bytes.
        assert_eq!(m.bytes_per_passage(), Some(48.0));
    }

    #[test]
    fn upload_accounting_shows_compact_savings() {
        let mut m = CommunicationMetrics::new();
        let mut bits = BitArray::new(1 << 14);
        bits.set(7);
        m.record_upload(&PeriodUpload {
            rsu: RsuId(1),
            counter: 1,
            bits,
        });
        assert_eq!(m.uploads, 1);
        assert!(m.upload_bytes_compact < m.upload_bytes_dense);
        assert!(m.upload_savings().unwrap() > 0.9);
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = CommunicationMetrics {
            queries: 1,
            reports: 1,
            uploads: 1,
            query_bytes: 10,
            report_bytes: 20,
            upload_bytes_dense: 30,
            upload_bytes_compact: 15,
        };
        a.merge(&a.clone());
        assert_eq!(a.queries, 2);
        assert_eq!(a.upload_bytes_dense, 60);
    }

    /// Regression: zero-denominator ratios used to come back as `0.0`
    /// sentinels, indistinguishable from genuine measurements of zero;
    /// they must now be absent.
    #[test]
    fn empty_metrics_have_no_ratios() {
        let m = CommunicationMetrics::new();
        assert_eq!(m.bytes_per_passage(), None);
        assert_eq!(m.upload_savings(), None);
        assert_eq!(LinkMetrics::default().loss_fraction(), None);
    }

    #[test]
    fn link_metrics_merge_and_loss_fraction() {
        let mut a = LinkMetrics {
            frames: 10,
            delivered: 7,
            dropped: 2,
            duplicated: 0,
            late: 1,
            truncated: 1,
            bit_flipped: 0,
        };
        assert!((a.loss_fraction().unwrap() - 0.3).abs() < 1e-12);
        a.merge(&a.clone());
        assert_eq!(a.frames, 20);
        assert_eq!(a.dropped, 4);
    }

    #[test]
    fn fault_metrics_merge_sums_everything() {
        let mut f = FaultMetrics::new();
        f.report_link.frames = 5;
        f.reports_lost_to_crash = 3;
        f.upload_retries = 2;
        f.backoff_seconds = 1.5;
        let mut g = f;
        g.merge(&f);
        assert_eq!(g.report_link.frames, 10);
        assert_eq!(g.reports_lost_to_crash, 6);
        assert_eq!(g.upload_retries, 4);
        assert!((g.backoff_seconds - 3.0).abs() < 1e-12);
    }

    #[test]
    fn record_into_mirrors_struct_counters() {
        let mut comm = CommunicationMetrics::new();
        comm.queries = 7;
        comm.upload_bytes_compact = 90;
        let mut faults = FaultMetrics::new();
        faults.report_link.frames = 5;
        faults.report_link.dropped = 2;
        faults.upload_retries = 3;
        faults.backoff_seconds = 0.5;

        let obs = vcps_obs::Obs::enabled(vcps_obs::Level::Info);
        comm.record_into(&obs);
        faults.record_into(&obs);
        // Recording twice sums, exactly like the struct merges.
        faults.record_into(&obs);
        let snap = obs.snapshot();
        assert_eq!(snap.counters["comm.queries"], 7);
        assert_eq!(snap.counters["comm.upload_bytes_compact"], 90);
        assert_eq!(snap.counters["faults.report_link.frames"], 10);
        assert_eq!(snap.counters["faults.report_link.dropped"], 4);
        assert_eq!(snap.counters["faults.upload_retries"], 6);
        assert_eq!(snap.histograms["faults.backoff_us"].count, 2);
        assert_eq!(snap.histograms["faults.backoff_us"].sum, 1_000_000);

        // Disabled: nothing recorded, nothing allocated.
        let off = vcps_obs::Obs::disabled();
        comm.record_into(&off);
        faults.record_into(&off);
        assert!(off.snapshot().is_empty());
    }
}
