//! The metropolis-scale continuous-estimation scenario (DESIGN.md §20).
//!
//! Everything before this module measures one period over one small
//! network. A deployed system looks different: thousands of RSUs, a
//! 24-hour demand curve, millions of vehicle reports per period pouring
//! into a sharded server, and consumers reading a *sliding window* of
//! O–D matrices that must stay total even while RSUs crash mid-window.
//! This module composes the existing machinery into that workload:
//!
//! * [`build_metro`] synthesizes the city: a grid or ring–radial road
//!   network ([`vcps_roadnet::grid_network`] /
//!   [`vcps_roadnet::ring_radial_network`]), doubly-constrained
//!   gravity demand with dead zones
//!   ([`vcps_roadnet::gravity_demand`]), a double-peaked diurnal
//!   profile ([`vcps_roadnet::diurnal_profile`]), MSA equilibrium
//!   assignment, and per-vehicle route expansion — plus exact ground
//!   truth ([`pair_truth`]) for accuracy reporting.
//! * [`run_metro_sharded_threads`] / [`run_metro_monolith_threads`]
//!   (and their `faulty` variants) drive the continuous multi-period
//!   loop through either server shape. Both backends run the *same*
//!   generic driver — same authority, departures, identities, frames,
//!   sequence numbers, and channel keys — so a sharded metro run is
//!   bit-identical to the monolithic one by construction, and
//!   `tests/metro_differential.rs` pins it.
//! * [`SlidingWindow`] aggregates the last `W` periods' O–D matrices.
//!   Per-period entries keep the [`CentralServer::estimate_or_degraded`]
//!   semantics — a period in which an RSU crashed contributes its
//!   history-backed degraded estimate, never a hole — and an empty
//!   window is a typed [`SimError::EmptyWindow`], never a NaN.

use std::collections::{BTreeMap, VecDeque};
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use vcps_core::{PairEstimate, RsuId, Scheme, VehicleIdentity};
use vcps_hash::splitmix64;
use vcps_obs::{Obs, Phase};
use vcps_roadnet::assignment::{all_or_nothing, msa_equilibrium};
use vcps_roadnet::{
    diurnal_profile, expand_vehicle_trips, gravity_demand, grid_network, metro_marginals,
    ring_radial_network, GridSpec, RingRadialSpec, RoadNetwork, VehicleTrip,
};

use crate::concurrent::SharedRsu;
use crate::engine::{drive_arrivals, drive_arrivals_faulty, simulate_arrivals, PeriodSettings};
use crate::faults::{self, FaultPlan, RetryPolicy, SequencedSink};
use crate::metrics::FaultMetrics;
use crate::pki::TrustedAuthority;
use crate::protocol::{BatchUpload, Query, SequencedUpload};
use crate::{CentralServer, OdMatrix, ShardedServer, SimError, SimVehicle};

/// How the synthesized metropolis lays out its road network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetroLayout {
    /// A `w × h` Manhattan grid (4-neighbor, bidirectional).
    Grid,
    /// A CBD-centered ring–radial city (rings × spokes around node 0).
    RingRadial,
}

/// Parameters for [`build_metro`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetroConfig {
    /// Target RSU count; the generated network has at least this many
    /// nodes (rounded up to fill the layout).
    pub rsus: usize,
    /// Measurement periods in the day (the diurnal profile is sampled
    /// at each period's midpoint).
    pub periods: usize,
    /// Base (daily-average) trip-table total per period; each period's
    /// demand is this scaled by its diurnal multiplier.
    pub total_trips: f64,
    /// Demand units per expanded vehicle (`1.0` = one vehicle per
    /// trip-table unit; larger subsamples).
    pub vehicles_per_unit: f64,
    /// MSA user-equilibrium iterations per period.
    pub msa_iterations: usize,
    /// Fraction of zones with zero population (no trip ends at all).
    pub zero_zone_fraction: f64,
    /// Network layout.
    pub layout: MetroLayout,
    /// Master seed (network attributes, marginals, deterrence).
    pub seed: u64,
}

impl Default for MetroConfig {
    fn default() -> Self {
        Self {
            rsus: 256,
            periods: 4,
            total_trips: 20_000.0,
            vehicles_per_unit: 1.0,
            msa_iterations: 4,
            zero_zone_fraction: 0.1,
            layout: MetroLayout::Grid,
            seed: 0,
        }
    }
}

/// A synthesized metropolis workload: the network, one vehicle
/// population per period, exact per-period ground truth, and the
/// initial volume history that sizes period 0's arrays.
#[derive(Debug, Clone)]
pub struct MetroWorkload {
    /// The generated road network (every node hosts an RSU).
    pub net: RoadNetwork,
    /// Expanded vehicle routes per period.
    pub periods: Vec<Vec<VehicleTrip>>,
    /// Per-period pair ground truth from [`pair_truth`] (row-major
    /// `n × n`, symmetric): the exact vehicle count passing both nodes —
    /// the `n_c` the scheme estimates.
    pub truth: Vec<Vec<f64>>,
    /// The diurnal multipliers used per period.
    pub profile: Vec<f64>,
    /// MSA relative gap reached in each period's assignment.
    pub relative_gaps: Vec<f64>,
    /// Initial per-node volume history (period 0's vehicle counts — the
    /// "planning estimate" that seeds array sizing).
    pub initial_history: Vec<f64>,
}

impl MetroWorkload {
    /// Total expanded vehicles across all periods.
    #[must_use]
    pub fn total_vehicles(&self) -> usize {
        self.periods.iter().map(Vec::len).sum()
    }
}

/// Exact per-node ground truth for a vehicle population: how many
/// vehicles pass each node (the paper's `n_x`).
#[must_use]
pub fn point_truth(trips: &[VehicleTrip], nodes: usize) -> Vec<f64> {
    let mut out = vec![0.0; nodes];
    let mut seen = Vec::new();
    for trip in trips {
        seen.clear();
        seen.extend_from_slice(&trip.route);
        seen.sort_unstable();
        seen.dedup();
        for &node in &seen {
            out[node] += 1.0;
        }
    }
    out
}

/// Exact pair ground truth for a vehicle population: `truth[a·n + b]`
/// is the number of vehicles whose route visits both `a` and `b` — the
/// point-to-point volume `n_c` the masking scheme estimates. Row-major,
/// symmetric, zero diagonal.
#[must_use]
pub fn pair_truth(trips: &[VehicleTrip], nodes: usize) -> Vec<f64> {
    let mut out = vec![0.0; nodes * nodes];
    let mut seen = Vec::new();
    for trip in trips {
        seen.clear();
        seen.extend_from_slice(&trip.route);
        seen.sort_unstable();
        seen.dedup();
        for (i, &a) in seen.iter().enumerate() {
            for &b in &seen[i + 1..] {
                out[a * nodes + b] += 1.0;
                out[b * nodes + a] += 1.0;
            }
        }
    }
    out
}

/// Synthesizes a complete metropolis workload from a [`MetroConfig`]:
/// network, gravity demand with dead zones, diurnal scaling, MSA
/// assignment, vehicle expansion, and exact ground truth per period.
///
/// Deterministic for a fixed config; independent of thread count (the
/// synthesis pipeline is single-threaded pure computation).
///
/// # Panics
///
/// Panics if the config is degenerate (`rsus < 2`, `periods == 0`,
/// non-positive `total_trips` or `vehicles_per_unit`).
#[must_use]
pub fn build_metro(config: &MetroConfig) -> MetroWorkload {
    assert!(config.rsus >= 2, "need at least two RSUs");
    assert!(config.periods >= 1, "need at least one period");
    assert!(config.total_trips > 0.0, "need positive demand");
    assert!(
        config.vehicles_per_unit > 0.0,
        "vehicles_per_unit must be positive"
    );
    let net = match config.layout {
        MetroLayout::Grid => {
            let width = (config.rsus as f64).sqrt().ceil() as usize;
            let height = config.rsus.div_ceil(width);
            grid_network(
                &GridSpec {
                    width,
                    height,
                    ..GridSpec::default()
                },
                config.seed,
            )
        }
        MetroLayout::RingRadial => {
            let spokes = ((config.rsus as f64).sqrt().round() as usize).max(3);
            let rings = (config.rsus - 1).div_ceil(spokes).max(1);
            ring_radial_network(
                &RingRadialSpec {
                    rings,
                    spokes,
                    ..RingRadialSpec::default()
                },
                config.seed,
            )
        }
    };
    let n = net.node_count();
    let (productions, attractions) = metro_marginals(
        n,
        config.total_trips,
        config.zero_zone_fraction,
        (1.0, 80.0),
        config.seed,
    );
    let base = gravity_demand(&productions, &attractions, config.seed);
    let profile = diurnal_profile(config.periods);

    let mut periods = Vec::with_capacity(config.periods);
    let mut truth = Vec::with_capacity(config.periods);
    let mut relative_gaps = Vec::with_capacity(config.periods);
    for &multiplier in &profile {
        let scaled = base.scaled(multiplier);
        let equilibrium = msa_equilibrium(&net, &scaled, config.msa_iterations.max(1));
        let assignment = all_or_nothing(&net, &scaled, &equilibrium.link_times);
        let vehicles = expand_vehicle_trips(&assignment, &scaled, config.vehicles_per_unit);
        truth.push(pair_truth(&vehicles, n));
        relative_gaps.push(equilibrium.relative_gap);
        periods.push(vehicles);
    }
    let initial_history = point_truth(&periods[0], n);
    MetroWorkload {
        net,
        periods,
        truth,
        profile,
        relative_gaps,
        initial_history,
    }
}

/// A window-aggregated pair answer (see [`SlidingWindow::average`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowEstimate {
    /// Mean `n̂_c` over the window periods that cover the pair.
    pub n_c: f64,
    /// How many window periods covered the pair.
    pub periods: usize,
    /// How many of those answered with a history-backed degraded
    /// estimate (RSU crashed or its upload never arrived that period).
    pub degraded_periods: usize,
    /// The newest covering period's full answer, provenance intact.
    pub latest: PairEstimate,
}

/// The last `W` periods' O–D matrices, aggregated for consumers that
/// want a smoother signal than a single period (adaptive signal
/// control, congestion pricing).
///
/// Window entries are exactly the per-period
/// [`CentralServer::estimate_or_degraded`] answers: a period in which
/// an RSU crashed contributes its degraded history-backed estimate
/// (flagged via [`WindowEstimate::degraded_periods`]) rather than
/// disappearing, so the aggregate degrades exactly as gracefully as
/// each period does.
#[derive(Debug, Clone, PartialEq)]
pub struct SlidingWindow {
    window: usize,
    matrices: VecDeque<OdMatrix>,
}

impl SlidingWindow {
    /// An empty window retaining at most `window` period matrices.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    #[must_use]
    pub fn new(window: usize) -> Self {
        assert!(window >= 1, "window must hold at least one period");
        Self {
            window,
            matrices: VecDeque::with_capacity(window),
        }
    }

    /// The configured capacity `W`.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.window
    }

    /// Completed periods currently held (`min(pushed, W)`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.matrices.len()
    }

    /// `true` before the first period completes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.matrices.is_empty()
    }

    /// Appends a completed period's matrix, evicting the oldest when
    /// the window is full.
    pub fn push(&mut self, matrix: OdMatrix) {
        if self.matrices.len() == self.window {
            self.matrices.pop_front();
        }
        self.matrices.push_back(matrix);
    }

    /// The newest period's matrix, if any period has completed.
    #[must_use]
    pub fn latest(&self) -> Option<&OdMatrix> {
        self.matrices.back()
    }

    /// The held matrices, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &OdMatrix> {
        self.matrices.iter()
    }

    /// The window-averaged answer for a pair: the mean `n̂_c` over every
    /// held period that covers the pair, with the newest covering
    /// period's full [`PairEstimate`] attached. With a window of 1 this
    /// is exactly the single-period estimate.
    ///
    /// # Errors
    ///
    /// * [`SimError::EmptyWindow`] if no period has completed yet;
    /// * [`SimError::MissingUpload`] if no held matrix covers the pair
    ///   (the server has never heard of one of the RSUs).
    pub fn average(&self, a: RsuId, b: RsuId) -> Result<WindowEstimate, SimError> {
        if self.matrices.is_empty() {
            return Err(SimError::EmptyWindow);
        }
        let mut sum = 0.0;
        let mut periods = 0usize;
        let mut degraded_periods = 0usize;
        let mut latest = None;
        for matrix in &self.matrices {
            if let Some(estimate) = matrix.get(a, b) {
                sum += estimate.n_c();
                periods += 1;
                if estimate.is_degraded() {
                    degraded_periods += 1;
                }
                latest = Some(*estimate);
            }
        }
        match latest {
            Some(latest) => Ok(WindowEstimate {
                n_c: sum / periods as f64,
                periods,
                degraded_periods,
                latest,
            }),
            None => {
                let known = self
                    .latest()
                    .map(|m| m.rsus().binary_search(&a).is_ok())
                    .unwrap_or(false);
                Err(SimError::MissingUpload {
                    rsu: if known { b } else { a },
                })
            }
        }
    }
}

/// The outcome of a continuous multi-period metro run through one
/// server backend (monolithic [`CentralServer`] or sharded
/// [`ShardedServer`] — the driver is the same generic code, so the two
/// shapes are bit-identical for identical inputs).
#[derive(Debug, Clone)]
pub struct MetroRun<S> {
    /// The server after the final period's
    /// [`finish_period`](CentralServer::finish_period).
    pub server: S,
    /// The sliding window over the last `W` periods' O–D matrices.
    pub window: SlidingWindow,
    /// Array sizes in force during each period, per node.
    pub sizes_per_period: Vec<Vec<usize>>,
    /// Query/answer exchanges per period.
    pub exchanges_per_period: Vec<usize>,
    /// Fault counters per period (empty for ideal-channel runs).
    pub faults_per_period: Vec<FaultMetrics>,
    /// RSUs whose upload was abandoned, per period (empty for ideal
    /// runs).
    pub undelivered_per_period: Vec<Vec<RsuId>>,
    /// Upload frames delivered to the server across all periods.
    pub uploads_delivered: usize,
    /// Wall-clock nanoseconds spent ingesting uploads (all periods).
    pub ingest_ns: u128,
    /// Wall-clock nanoseconds spent computing O–D matrices (all
    /// periods).
    pub od_ns: u128,
}

/// What the generic metro driver needs from a server backend beyond
/// the [`SequencedSink`] the faulty upload path already shares. Both
/// shapes route ideal-channel periods through their native bulk path:
/// the monolith frame by frame, the sharded server as one
/// [`BatchUpload`] wire frame through the zero-copy
/// [`ShardedServer::receive_batch_wire`] ingest.
trait MetroBackend: SequencedSink {
    fn seed(&mut self, rsu: RsuId, average: f64);
    fn finish(&mut self) -> Result<BTreeMap<RsuId, usize>, SimError>;
    fn od(&self, threads: usize) -> Result<OdMatrix, SimError>;
    fn ingest_ideal(&mut self, frames: Vec<SequencedUpload>) -> Result<usize, SimError>;
}

impl MetroBackend for CentralServer {
    fn seed(&mut self, rsu: RsuId, average: f64) {
        self.seed_history(rsu, average);
    }

    fn finish(&mut self) -> Result<BTreeMap<RsuId, usize>, SimError> {
        self.finish_period()
    }

    fn od(&self, threads: usize) -> Result<OdMatrix, SimError> {
        self.od_matrix_threads(threads)
    }

    fn ingest_ideal(&mut self, frames: Vec<SequencedUpload>) -> Result<usize, SimError> {
        let count = frames.len();
        for frame in frames {
            self.receive_sequenced(frame);
        }
        Ok(count)
    }
}

impl MetroBackend for ShardedServer {
    fn seed(&mut self, rsu: RsuId, average: f64) {
        self.seed_history(rsu, average);
    }

    fn finish(&mut self) -> Result<BTreeMap<RsuId, usize>, SimError> {
        self.finish_period()
    }

    fn od(&self, threads: usize) -> Result<OdMatrix, SimError> {
        self.od_matrix_threads(threads)
    }

    fn ingest_ideal(&mut self, frames: Vec<SequencedUpload>) -> Result<usize, SimError> {
        let count = frames.len();
        let wire = BatchUpload::new(frames)?.encode();
        self.receive_batch_wire(&wire)?;
        Ok(count)
    }
}

/// The continuous loop both backends share. Everything that feeds the
/// servers — authority, array sizes, departures, vehicle identities,
/// upload frames, sequence numbers (the period index), channel keys —
/// is derived identically to [`crate::engine::run_periods_threads`] /
/// [`run_periods_faulty_threads`](crate::engine::run_periods_faulty_threads),
/// so the two shapes cannot diverge and multi-period EWMA sizing
/// matches the engine's.
#[allow(clippy::too_many_arguments)]
fn run_metro_with<S: MetroBackend>(
    mut server: S,
    scheme: &Scheme,
    net: &RoadNetwork,
    link_times: &[f64],
    periods: &[Vec<VehicleTrip>],
    initial_history: &[f64],
    settings: &PeriodSettings,
    faulting: Option<(&FaultPlan, &RetryPolicy)>,
    window: usize,
    threads: usize,
    obs: &Obs,
) -> Result<MetroRun<S>, SimError> {
    let PeriodSettings {
        period_length,
        seed,
        ..
    } = *settings;
    assert!(!periods.is_empty(), "need at least one period");
    assert_eq!(
        initial_history.len(),
        net.node_count(),
        "one history volume per node"
    );
    if let Some((plan, policy)) = faulting {
        plan.validate()?;
        policy.validate()?;
    }
    let lost_windows = faulting.map(|(plan, _)| plan.lost_windows(net.node_count()));

    for (node, &avg) in initial_history.iter().enumerate() {
        server.seed(RsuId(node as u64), avg);
    }
    let mut sizes = server.finish()?;
    let mut window = SlidingWindow::new(window);
    let mut sizes_per_period = Vec::with_capacity(periods.len());
    let mut exchanges_per_period = Vec::with_capacity(periods.len());
    let mut faults_per_period = Vec::new();
    let mut undelivered_per_period = Vec::new();
    let mut uploads_delivered = 0usize;
    let mut ingest_ns = 0u128;
    let mut od_ns = 0u128;

    for (p, trips) in periods.iter().enumerate() {
        let authority = TrustedAuthority::new(seed ^ 0x0CA0_17E5 ^ p as u64);
        let mut rsus = Vec::with_capacity(net.node_count());
        let mut m_o = 0usize;
        for node in 0..net.node_count() {
            let id = RsuId(node as u64);
            let m = sizes.get(&id).copied().unwrap_or(2).max(2);
            m_o = m_o.max(m);
            rsus.push(SharedRsu::new(id, m, &authority)?);
        }
        let queries: Vec<Query> = rsus.iter().map(SharedRsu::query).collect();

        let mut rng = StdRng::seed_from_u64(seed ^ (p as u64) << 32);
        let departures: Vec<f64> = trips
            .iter()
            .map(|_| rng.random_range(0.0..period_length.max(f64::MIN_POSITIVE)))
            .collect();
        let arrivals = simulate_arrivals(net, link_times, trips, &departures);
        if let Some(last) = arrivals.last() {
            obs.set_sim_time(last.time);
        }
        let make_vehicle = |t: &VehicleTrip| {
            SimVehicle::new(
                VehicleIdentity::from_raw(t.id, splitmix64(seed ^ t.id)),
                splitmix64(t.id ^ 0xACE0_FBA5E ^ p as u64),
            )
        };

        let exchanges = match (faulting, &lost_windows) {
            (Some((plan, _)), Some(lost)) => {
                let report_channel = plan.report_channel(p as u64);
                let (exchanges, mut faults) = {
                    let _encode = obs.phase(Phase::Encode);
                    drive_arrivals_faulty(
                        scheme,
                        &authority,
                        &rsus,
                        &queries,
                        trips,
                        &arrivals,
                        make_vehicle,
                        m_o,
                        threads,
                        &report_channel,
                        lost,
                    )?
                };
                faults.crashes = plan.crashes.len() as u64;
                faults_per_period.push(faults);
                exchanges
            }
            _ => {
                let _encode = obs.phase(Phase::Encode);
                drive_arrivals(
                    scheme,
                    &authority,
                    &rsus,
                    &queries,
                    trips,
                    &arrivals,
                    make_vehicle,
                    m_o,
                    threads,
                )?
            }
        };
        obs.add("engine.exchanges", exchanges as u64);
        sizes_per_period.push(queries.iter().map(|q| q.array_size as usize).collect());
        exchanges_per_period.push(exchanges);

        let ingest_started = Instant::now();
        match faulting {
            Some((plan, policy)) => {
                let upload_channel = plan.upload_channel(p as u64);
                let faults = faults_per_period.last_mut().expect("pushed above");
                let mut undelivered = Vec::new();
                for rsu in &rsus {
                    let upload = rsu.upload();
                    let delivery = faults::upload_with_retry(
                        &upload,
                        p as u64,
                        &upload_channel,
                        &mut server,
                        policy,
                        faults,
                    );
                    if delivery.delivered {
                        uploads_delivered += 1;
                    } else {
                        undelivered.push(upload.rsu);
                    }
                }
                faults.record_into(obs);
                obs.add("engine.undelivered", undelivered.len() as u64);
                undelivered_per_period.push(undelivered);
            }
            None => {
                let frames: Vec<SequencedUpload> = rsus
                    .iter()
                    .map(|rsu| SequencedUpload {
                        seq: p as u64,
                        upload: rsu.upload(),
                    })
                    .collect();
                let _receive = obs.phase(Phase::Receive);
                uploads_delivered += server.ingest_ideal(frames)?;
            }
        }
        ingest_ns += ingest_started.elapsed().as_nanos();

        let od_started = Instant::now();
        let matrix = server.od(threads)?;
        od_ns += od_started.elapsed().as_nanos();
        window.push(matrix);
        obs.inc("metro.periods");
        obs.add("metro.window.held", window.len() as u64);

        sizes = server.finish()?;
    }
    obs.add("metro.uploads.delivered", uploads_delivered as u64);
    Ok(MetroRun {
        server,
        window,
        sizes_per_period,
        exchanges_per_period,
        faults_per_period,
        undelivered_per_period,
        uploads_delivered,
        ingest_ns,
        od_ns,
    })
}

/// Runs the continuous metro loop through a monolithic
/// [`CentralServer`] — the reference shape the sharded run must match
/// bit for bit.
///
/// # Errors
///
/// Propagates sizing and protocol failures.
///
/// # Panics
///
/// Panics if `initial_history.len() != net.node_count()`, `periods` is
/// empty, `window == 0`, or `threads == 0`.
#[allow(clippy::too_many_arguments)]
pub fn run_metro_monolith_threads(
    scheme: &Scheme,
    net: &RoadNetwork,
    link_times: &[f64],
    periods: &[Vec<VehicleTrip>],
    initial_history: &[f64],
    settings: &PeriodSettings,
    window: usize,
    threads: usize,
    obs: &Obs,
) -> Result<MetroRun<CentralServer>, SimError> {
    let server = CentralServer::new(scheme.clone(), settings.history_alpha)?.with_obs(obs.clone());
    run_metro_with(
        server,
        scheme,
        net,
        link_times,
        periods,
        initial_history,
        settings,
        None,
        window,
        threads,
        obs,
    )
}

/// Runs the continuous metro loop through a [`ShardedServer`]: each
/// period's uploads travel as one [`BatchUpload`] wire frame into the
/// zero-copy batch ingest, hash-partitioned over `shards` receiver
/// shards.
///
/// # Errors
///
/// Propagates sizing and protocol failures (including a zero
/// `shards`).
///
/// # Panics
///
/// As [`run_metro_monolith_threads`].
#[allow(clippy::too_many_arguments)]
pub fn run_metro_sharded_threads(
    scheme: &Scheme,
    net: &RoadNetwork,
    link_times: &[f64],
    periods: &[Vec<VehicleTrip>],
    initial_history: &[f64],
    settings: &PeriodSettings,
    shards: usize,
    window: usize,
    threads: usize,
    obs: &Obs,
) -> Result<MetroRun<ShardedServer>, SimError> {
    let server =
        ShardedServer::new(scheme.clone(), settings.history_alpha, shards)?.with_obs(obs.clone());
    run_metro_with(
        server,
        scheme,
        net,
        link_times,
        periods,
        initial_history,
        settings,
        None,
        window,
        threads,
        obs,
    )
}

/// [`run_metro_monolith_threads`] under seeded fault injection: each
/// period re-rolls its channels (the period index salts them), uploads
/// retry through [`faults::upload_with_retry`] with the period index as
/// sequence number, and crash windows recur every period.
///
/// # Errors
///
/// Propagates sizing and protocol failures, and invalid fault plans.
///
/// # Panics
///
/// As [`run_metro_monolith_threads`].
#[allow(clippy::too_many_arguments)]
pub fn run_metro_faulty_monolith_threads(
    scheme: &Scheme,
    net: &RoadNetwork,
    link_times: &[f64],
    periods: &[Vec<VehicleTrip>],
    initial_history: &[f64],
    settings: &PeriodSettings,
    plan: &FaultPlan,
    policy: &RetryPolicy,
    window: usize,
    threads: usize,
    obs: &Obs,
) -> Result<MetroRun<CentralServer>, SimError> {
    let server = CentralServer::new(scheme.clone(), settings.history_alpha)?.with_obs(obs.clone());
    run_metro_with(
        server,
        scheme,
        net,
        link_times,
        periods,
        initial_history,
        settings,
        Some((plan, policy)),
        window,
        threads,
        obs,
    )
}

/// [`run_metro_sharded_threads`] under seeded fault injection — the
/// same frames, channel keys, and retry decisions as the faulty
/// monolith run, delivered into the sharded sink.
///
/// # Errors
///
/// Propagates sizing and protocol failures, invalid fault plans, and a
/// zero `shards`.
///
/// # Panics
///
/// As [`run_metro_monolith_threads`].
#[allow(clippy::too_many_arguments)]
pub fn run_metro_faulty_sharded_threads(
    scheme: &Scheme,
    net: &RoadNetwork,
    link_times: &[f64],
    periods: &[Vec<VehicleTrip>],
    initial_history: &[f64],
    settings: &PeriodSettings,
    plan: &FaultPlan,
    policy: &RetryPolicy,
    shards: usize,
    window: usize,
    threads: usize,
    obs: &Obs,
) -> Result<MetroRun<ShardedServer>, SimError> {
    let server =
        ShardedServer::new(scheme.clone(), settings.history_alpha, shards)?.with_obs(obs.clone());
    run_metro_with(
        server,
        scheme,
        net,
        link_times,
        periods,
        initial_history,
        settings,
        Some((plan, policy)),
        window,
        threads,
        obs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::LinkFaults;

    fn tiny_config() -> MetroConfig {
        MetroConfig {
            rsus: 16,
            periods: 3,
            total_trips: 600.0,
            msa_iterations: 2,
            seed: 11,
            ..MetroConfig::default()
        }
    }

    fn tiny_run(window: usize) -> MetroRun<CentralServer> {
        let workload = build_metro(&tiny_config());
        let scheme = Scheme::variable(2, 3.0, 5).expect("valid scheme");
        let settings = PeriodSettings {
            seed: 11,
            ..PeriodSettings::default()
        };
        run_metro_monolith_threads(
            &scheme,
            &workload.net,
            &workload.net.free_flow_times(),
            &workload.periods,
            &workload.initial_history,
            &settings,
            window,
            1,
            &Obs::disabled(),
        )
        .expect("metro run")
    }

    #[test]
    fn build_metro_is_deterministic_and_sized() {
        let config = tiny_config();
        let a = build_metro(&config);
        let b = build_metro(&config);
        assert!(a.net.node_count() >= config.rsus);
        assert_eq!(a.periods.len(), 3);
        assert_eq!(a.net, b.net);
        assert_eq!(a.periods, b.periods);
        assert_eq!(a.truth, b.truth);
        // The diurnal profile actually varies demand across periods.
        assert!(a.periods.iter().map(Vec::len).max() > a.periods.iter().map(Vec::len).min());
    }

    #[test]
    fn ring_radial_layout_builds_too() {
        let workload = build_metro(&MetroConfig {
            layout: MetroLayout::RingRadial,
            ..tiny_config()
        });
        assert!(workload.net.node_count() >= 16);
        assert!(workload.total_vehicles() > 0);
    }

    #[test]
    fn pair_truth_counts_route_overlaps() {
        let trips = vec![
            VehicleTrip {
                id: 0,
                origin: 0,
                dest: 2,
                route: vec![0, 1, 2],
            },
            VehicleTrip {
                id: 1,
                origin: 1,
                dest: 2,
                route: vec![1, 2],
            },
        ];
        let truth = pair_truth(&trips, 3);
        assert_eq!(truth[3 + 2], 2.0); // both vehicles pass 1 and 2
        assert_eq!(truth[2 * 3 + 1], 2.0); // symmetric
        assert_eq!(truth[2], 1.0); // only vehicle 0 passes 0 and 2
        assert_eq!(truth[0], 0.0); // zero diagonal
        assert_eq!(point_truth(&trips, 3), vec![1.0, 2.0, 2.0]);
    }

    #[test]
    fn empty_window_is_a_typed_error() {
        let window = SlidingWindow::new(3);
        assert_eq!(
            window.average(RsuId(0), RsuId(1)),
            Err(SimError::EmptyWindow)
        );
    }

    #[test]
    fn window_of_one_equals_single_period_estimate() {
        let run = tiny_run(1);
        assert_eq!(run.window.len(), 1);
        let matrix = run.window.latest().expect("one period held");
        let n = matrix.len() as u64;
        let mut compared = 0;
        for a in 0..n {
            for b in (a + 1)..n {
                let (a, b) = (RsuId(a), RsuId(b));
                let Some(expected) = matrix.get(a, b) else {
                    continue;
                };
                let averaged = run.window.average(a, b).expect("covered pair");
                assert_eq!(averaged.n_c, expected.n_c());
                assert_eq!(averaged.latest, *expected);
                assert_eq!(averaged.periods, 1);
                compared += 1;
            }
        }
        assert!(compared > 0, "window covered no pairs");
    }

    #[test]
    fn window_average_is_mean_of_held_periods() {
        let run = tiny_run(2);
        assert_eq!(run.window.len(), 2);
        let held: Vec<&OdMatrix> = run.window.iter().collect();
        let (a, b) = (RsuId(0), RsuId(1));
        let expected: f64 = held
            .iter()
            .filter_map(|m| m.get(a, b))
            .map(|e| e.n_c())
            .sum::<f64>()
            / held.iter().filter(|m| m.get(a, b).is_some()).count() as f64;
        let averaged = run.window.average(a, b).expect("covered pair");
        assert_eq!(averaged.n_c, expected);
    }

    #[test]
    fn window_evicts_oldest_beyond_capacity() {
        let run_full = tiny_run(3);
        let run_capped = tiny_run(2);
        assert_eq!(run_full.window.len(), 3);
        assert_eq!(run_capped.window.len(), 2);
        // The capped window holds exactly the last two of the full run's
        // three matrices.
        let full: Vec<&OdMatrix> = run_full.window.iter().collect();
        let capped: Vec<&OdMatrix> = run_capped.window.iter().collect();
        assert_eq!(capped, vec![full[1], full[2]]);
    }

    #[test]
    fn unknown_rsu_is_missing_upload_not_nan() {
        let run = tiny_run(2);
        let ghost = RsuId(9_999);
        assert_eq!(
            run.window.average(ghost, RsuId(0)),
            Err(SimError::MissingUpload { rsu: ghost })
        );
        assert_eq!(
            run.window.average(RsuId(0), ghost),
            Err(SimError::MissingUpload { rsu: ghost })
        );
    }

    #[test]
    fn faulty_run_degrades_instead_of_failing() {
        let workload = build_metro(&tiny_config());
        let scheme = Scheme::variable(2, 3.0, 5).expect("valid scheme");
        let settings = PeriodSettings {
            seed: 11,
            ..PeriodSettings::default()
        };
        let plan = FaultPlan::new(77).with_upload_link(LinkFaults::none().with_drop(0.95));
        let policy = RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::default()
        };
        let run = run_metro_faulty_monolith_threads(
            &scheme,
            &workload.net,
            &workload.net.free_flow_times(),
            &workload.periods,
            &workload.initial_history,
            &settings,
            &plan,
            &policy,
            3,
            1,
            &Obs::disabled(),
        )
        .expect("faulty metro run");
        let lost: usize = run.undelivered_per_period.iter().map(Vec::len).sum();
        assert!(lost > 0, "a 95% drop rate should lose uploads");
        // Every pair still answers, some of them degraded.
        let latest = run.window.latest().expect("periods completed");
        let mut degraded = 0;
        for a in 0..workload.net.node_count() as u64 {
            for b in (a + 1)..workload.net.node_count() as u64 {
                if let Some(estimate) = latest.get(RsuId(a), RsuId(b)) {
                    if estimate.is_degraded() {
                        degraded += 1;
                    }
                }
            }
        }
        assert!(
            degraded > 0,
            "lost uploads should surface as degraded answers"
        );
    }
}
