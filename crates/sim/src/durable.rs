//! Durable ingestion: [`DurableServer`] wraps a [`ShardedServer`] with
//! a write-ahead frame log and periodic whole-deployment checkpoints
//! (both from `vcps-durable`), so a process crash between `receive` and
//! `finish_period` no longer loses the period's masked uploads.
//!
//! # Recovery model
//!
//! Every wire frame that reaches ingestion is appended to the WAL
//! *before* it is applied (fsynced per record by default, or batched
//! under a group-commit [`FlushPolicy`] — see DESIGN.md §18) — any
//! outcome, not just `Fresh`:
//! replaying the full arrival stream through the very same
//! [`ShardedServer::receive_sequenced`] / [`receive_batch`] paths
//! reproduces dedup and sequencing decisions *by construction*, instead
//! of re-implementing them in a recovery routine that could drift.
//! Recovery is therefore:
//!
//! 1. load the newest checkpoint that validates **and** is covered by
//!    the WAL's surviving prefix (a checkpoint ahead of a mid-file
//!    corruption is ignored — state is only trusted when the log that
//!    produced it is);
//! 2. replay the WAL records past the checkpoint through the normal
//!    receive paths, silently (the rebuilt server carries a disabled
//!    observability handle during replay — every replayed frame was
//!    already counted when it was first accepted, so counters fire
//!    exactly once per live event and a crashed-and-recovered run's
//!    registry matches an uninterrupted run's, modulo the `wal.*`
//!    series);
//! 3. truncate any torn tail so future appends land after the last
//!    valid record, and re-attach the real observability handle.
//!
//! Torn writes, truncated tails, and bit-flipped records come back as
//! typed [`DurabilityError`]s in the [`RecoveryReport`] — the scan
//! stops at the first corrupt record, never panics, and never applies
//! a record that failed its checksum. See DESIGN.md §17.

use std::path::{Path, PathBuf};

use vcps_core::CoreError;
use vcps_durable::{read_wal, CheckpointStore, DurabilityError, FlushPolicy, WalWriter};
use vcps_obs::{Level, Obs, Phase, Value};

use crate::protocol::{BatchUpload, BatchUploadRef, CheckpointSet, SequencedUpload};
use crate::{ReceiveOutcome, ShardedServer, SimError};

/// File name of the frame log inside a durability directory.
pub const WAL_FILE: &str = "frames.wal";

/// Subdirectory holding published checkpoints.
pub const CHECKPOINT_DIR: &str = "checkpoints";

/// Durability tuning for a [`DurableServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DurableOptions {
    /// Publish a whole-deployment checkpoint every this many WAL
    /// records (`None`: log-only, recovery replays from the start).
    /// Must be positive when set.
    pub checkpoint_interval: Option<u64>,
    /// When WAL appends are flushed to stable storage (group commit,
    /// DESIGN.md §18). The default, [`FlushPolicy::PerRecord`], keeps
    /// the original acknowledge-after-fsync semantics; grouped policies
    /// trade a bounded window of acknowledged-but-volatile frames for
    /// an order-of-magnitude fsync reduction. Thresholded policies must
    /// be positive.
    pub flush: FlushPolicy,
}

impl DurableOptions {
    /// Log-only durability: every frame is persisted, no checkpoints.
    #[must_use]
    pub fn log_only() -> Self {
        Self::default()
    }

    /// Checkpoint every `interval` WAL records.
    #[must_use]
    pub fn with_checkpoint_every(mut self, interval: u64) -> Self {
        self.checkpoint_interval = Some(interval);
        self
    }

    /// Sets the WAL group-commit flush policy.
    #[must_use]
    pub fn with_flush(mut self, flush: FlushPolicy) -> Self {
        self.flush = flush;
        self
    }

    fn validate(&self) -> Result<(), SimError> {
        if self.checkpoint_interval == Some(0) {
            return Err(SimError::Core(CoreError::InvalidConfig {
                parameter: "checkpoint_interval",
                reason: "must be positive when set".to_string(),
            }));
        }
        if matches!(
            self.flush,
            FlushPolicy::EveryRecords(0) | FlushPolicy::EveryBytes(0)
        ) {
            return Err(SimError::Core(CoreError::InvalidConfig {
                parameter: "flush",
                reason: "flush threshold must be positive".to_string(),
            }));
        }
        Ok(())
    }
}

/// What [`DurableServer::recover`] found on disk and did about it.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// WAL records covered by the restored checkpoint (0: no usable
    /// checkpoint, full replay).
    pub checkpoint_records: u64,
    /// WAL records replayed through the live receive paths.
    pub replayed_records: u64,
    /// Bytes of torn/corrupt WAL tail discarded before resuming
    /// appends.
    pub truncated_bytes: u64,
    /// Why the WAL scan stopped early, if it did (`None`: the log ended
    /// cleanly on a record boundary).
    pub tail_error: Option<DurabilityError>,
}

/// A [`ShardedServer`] whose ingestion is write-ahead logged and
/// periodically checkpointed, recoverable bit-identically after a
/// process crash (see the module docs for the recovery model).
///
/// Reads go straight to the wrapped server via [`server`](Self::server)
/// — durability is an ingest-side concern only.
#[derive(Debug)]
pub struct DurableServer {
    inner: ShardedServer,
    wal: WalWriter,
    store: CheckpointStore,
    options: DurableOptions,
    records_logged: u64,
    last_checkpoint: u64,
}

impl DurableServer {
    /// Arms the WAL writer's drop hook: a writer dropped while still
    /// holding group-commit records has silently discarded
    /// acknowledged-but-unflushed frames, which must show up in the
    /// deployment's counters rather than only at the next recovery.
    fn install_drop_accounting(wal: &mut WalWriter, obs: &Obs) {
        let obs = obs.clone();
        wal.set_drop_hook(move |records, bytes| {
            obs.add("wal.dropped_buffered_records", records);
            obs.add("wal.dropped_buffered_bytes", bytes);
            obs.event(
                Level::Warn,
                "wal.dropped_buffered_records",
                &[
                    ("records", Value::U64(records)),
                    ("bytes", Value::U64(bytes)),
                ],
            );
        });
    }

    /// Starts a fresh durable server in `dir` (created if needed): a
    /// new WAL (truncating any previous one) and an empty deployment.
    /// Use [`recover`](Self::recover) to resume from existing state
    /// instead.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Core`] for an invalid shard count, alpha,
    /// or checkpoint interval, and [`SimError::Durability`] if the
    /// directory or log cannot be created.
    pub fn create(
        scheme: vcps_core::Scheme,
        history_alpha: f64,
        shard_count: usize,
        dir: &Path,
        options: DurableOptions,
        obs: &Obs,
    ) -> Result<Self, SimError> {
        options.validate()?;
        // Opening the checkpoint store first creates `dir` itself (the
        // store's directory is nested inside it).
        let store = CheckpointStore::open(dir.join(CHECKPOINT_DIR))?;
        let mut wal = WalWriter::create(dir.join(WAL_FILE))?.with_flush_policy(options.flush);
        Self::install_drop_accounting(&mut wal, obs);
        let inner = ShardedServer::new(scheme, history_alpha, shard_count)?.with_obs(obs.clone());
        Ok(Self {
            inner,
            wal,
            store,
            options,
            records_logged: 0,
            last_checkpoint: 0,
        })
    }

    /// Rebuilds a durable server from what `dir` holds: newest usable
    /// checkpoint plus a silent WAL-tail replay (see the module docs),
    /// tolerating torn writes, truncated tails, and bit-flipped records
    /// — the scan stops at the first corrupt record and the tail is
    /// discarded, reported in the [`RecoveryReport`]. A missing WAL is
    /// an empty one (the crash may have landed before the first
    /// append).
    ///
    /// `history_alpha` and `shard_count` describe the deployment being
    /// recovered; a checkpoint whose topology disagrees with
    /// `shard_count` is rejected rather than silently re-routing RSUs.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Durability`] for hard I/O failures or a
    /// non-WAL file where the log should be, [`SimError::Core`] for a
    /// topology mismatch or invalid parameters, and
    /// [`SimError::MalformedMessage`] if a checksummed WAL record or
    /// checkpoint payload does not parse (possible only for a foreign
    /// or logically corrupted store — checksums catch random damage
    /// first). Never panics.
    pub fn recover(
        scheme: vcps_core::Scheme,
        history_alpha: f64,
        shard_count: usize,
        dir: &Path,
        options: DurableOptions,
        obs: &Obs,
    ) -> Result<(Self, RecoveryReport), SimError> {
        options.validate()?;
        let _timer = obs.phase(Phase::WalRecover);
        let store = CheckpointStore::open(dir.join(CHECKPOINT_DIR))?;
        let wal_path = dir.join(WAL_FILE);
        let (records, tail_error, truncated_bytes, mut wal) = if wal_path.exists() {
            let file_len = std::fs::metadata(&wal_path).map(|m| m.len()).unwrap_or(0);
            let scan = read_wal(&wal_path)?;
            let truncated = file_len.saturating_sub(scan.valid_len);
            let wal = WalWriter::resume(&wal_path, &scan)?.with_flush_policy(options.flush);
            (scan.records, scan.tail_error, truncated, wal)
        } else {
            (
                Vec::new(),
                None,
                0,
                WalWriter::create(&wal_path)?.with_flush_policy(options.flush),
            )
        };
        Self::install_drop_accounting(&mut wal, obs);
        let total = records.len() as u64;
        // A checkpoint is only usable if the surviving log prefix
        // covers it: state is trusted exactly as far as the log that
        // produced it.
        let checkpoint = store.latest_valid()?.filter(|c| c.seq <= total);
        let (mut inner, start) = match checkpoint {
            Some(c) => {
                let set = CheckpointSet::decode(&c.payload)?;
                if set.frames_applied != c.seq {
                    return Err(SimError::MalformedMessage {
                        reason: "checkpoint sequence disagrees with its payload",
                    });
                }
                if set.shards.len() != shard_count {
                    return Err(SimError::Core(CoreError::InvalidConfig {
                        parameter: "shard_count",
                        reason: format!(
                            "checkpoint holds {} shards, deployment expects {shard_count}",
                            set.shards.len()
                        ),
                    }));
                }
                (
                    ShardedServer::restore_from_checkpoint(scheme, &set)?,
                    set.frames_applied,
                )
            }
            None => (ShardedServer::new(scheme, history_alpha, shard_count)?, 0),
        };
        // Silent replay: `inner` carries a disabled observability
        // handle here (both construction paths leave it disabled), so
        // replayed frames are not double-counted.
        let mut replayed = 0u64;
        for frame in &records[start as usize..] {
            Self::replay_frame(&mut inner, frame)?;
            replayed += 1;
        }
        inner.set_obs(obs.clone());
        obs.inc("wal.recover");
        obs.add("wal.replay.records", replayed);
        let report = RecoveryReport {
            checkpoint_records: start,
            replayed_records: replayed,
            truncated_bytes,
            tail_error,
        };
        Ok((
            Self {
                inner,
                wal,
                store,
                options,
                records_logged: total,
                last_checkpoint: start,
            },
            report,
        ))
    }

    /// Applies one logged wire frame through the normal receive paths,
    /// dispatching on its tag byte. Replay runs the zero-copy decode —
    /// the same validation the owned decoders perform, without the
    /// per-frame materialization.
    fn replay_frame(inner: &mut ShardedServer, frame: &[u8]) -> Result<(), SimError> {
        match frame.first() {
            Some(5) => {
                let view = crate::protocol::SequencedUploadRef::decode_ref(frame)?;
                let _ = inner.receive_sequenced_ref(&view);
            }
            Some(6) => {
                let _ = inner.receive_batch_wire(frame)?;
            }
            _ => {
                return Err(SimError::MalformedMessage {
                    reason: "unknown WAL frame tag",
                });
            }
        }
        Ok(())
    }

    /// Appends one frame to the WAL — the write-ahead step, always
    /// before the in-memory apply. Whether the append is fsynced here
    /// (per-record) or batched into a later group commit is the
    /// [`FlushPolicy`]'s call; `wal.fsync` counts the flushes that
    /// actually happened.
    fn log_frame(&mut self, frame: &[u8]) -> Result<(), SimError> {
        let obs = self.inner.obs().clone();
        let _timer = obs.phase(Phase::WalAppend);
        let flushes_before = self.wal.flushes();
        self.wal.append(frame)?;
        self.records_logged += 1;
        obs.inc("wal.append");
        obs.add("wal.append.bytes", frame.len() as u64);
        obs.add("wal.fsync", self.wal.flushes() - flushes_before);
        Ok(())
    }

    /// Publishes a checkpoint if the configured cadence is due.
    fn maybe_checkpoint(&mut self) -> Result<(), SimError> {
        if let Some(interval) = self.options.checkpoint_interval {
            if self.records_logged - self.last_checkpoint >= interval {
                self.checkpoint_now()?;
            }
        }
        Ok(())
    }

    /// Flushes any group-commit-buffered WAL records to stable storage
    /// — the explicit flush boundary for [`FlushPolicy::Manual`] (and
    /// an early boundary for the thresholded policies). Every frame
    /// acknowledged before this call is durable once it returns.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Durability`] if the write or fsync fails.
    pub fn flush_wal(&mut self) -> Result<(), SimError> {
        let flushes_before = self.wal.flushes();
        self.wal.sync()?;
        self.inner
            .obs()
            .add("wal.fsync", self.wal.flushes() - flushes_before);
        Ok(())
    }

    /// Publishes a whole-deployment checkpoint covering everything
    /// logged so far, unconditionally. The WAL is flushed first so the
    /// checkpoint never claims records the log does not durably hold
    /// (recovery trusts a checkpoint only as far as the surviving log
    /// prefix).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Durability`] if the flush or publication
    /// fails.
    pub fn checkpoint_now(&mut self) -> Result<(), SimError> {
        self.flush_wal()?;
        let set = self.inner.checkpoint(self.records_logged);
        self.store.publish(self.records_logged, &set.encode())?;
        self.last_checkpoint = self.records_logged;
        self.inner.obs().inc("wal.checkpoint");
        Ok(())
    }

    /// [`ShardedServer::receive_sequenced`], write-ahead logged (one
    /// WAL record per frame).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Durability`] if the append, fsync, or a due
    /// checkpoint fails — in which case the frame was **not** applied
    /// (log first, apply second).
    pub fn receive_sequenced(
        &mut self,
        sequenced: SequencedUpload,
    ) -> Result<ReceiveOutcome, SimError> {
        self.log_frame(&sequenced.encode())?;
        let outcome = self.inner.receive_sequenced(sequenced);
        self.maybe_checkpoint()?;
        Ok(outcome)
    }

    /// [`ShardedServer::receive_batch`], write-ahead logged as a
    /// *single* WAL record carrying the whole batch frame — replay
    /// re-ingests it through the same batch path.
    ///
    /// # Errors
    ///
    /// As [`receive_sequenced`](Self::receive_sequenced).
    pub fn receive_batch(&mut self, batch: BatchUpload) -> Result<Vec<ReceiveOutcome>, SimError> {
        self.log_frame(&batch.encode())?;
        let outcomes = self.inner.receive_batch(batch);
        self.maybe_checkpoint()?;
        Ok(outcomes)
    }

    /// [`ShardedServer::receive_batch_wire`], write-ahead logged: the
    /// raw wire bytes are validated once (zero-copy), logged verbatim
    /// as a single WAL record — no re-encode, the log *is* the wire —
    /// and applied straight from the buffer.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MalformedMessage`] for a frame
    /// [`BatchUpload::decode`] would reject (nothing is logged or
    /// applied), otherwise as
    /// [`receive_sequenced`](Self::receive_sequenced).
    pub fn receive_batch_wire(&mut self, wire: &[u8]) -> Result<Vec<ReceiveOutcome>, SimError> {
        // Validate before logging: a malformed frame must never enter
        // the log, or replay would fail on it.
        let batch = BatchUploadRef::decode_ref(wire)?;
        self.log_frame(wire)?;
        let outcomes = self.inner.receive_batch_ref(&batch);
        self.maybe_checkpoint()?;
        Ok(outcomes)
    }

    /// [`ShardedServer::receive_parallel_threads`], write-ahead logged:
    /// every frame is appended (in input order — the log's order is
    /// deterministic at every thread count) and fsynced once before the
    /// parallel apply, so the log never trails the in-memory state.
    ///
    /// # Errors
    ///
    /// As [`receive_sequenced`](Self::receive_sequenced).
    ///
    /// # Panics
    ///
    /// As the wrapped method (`threads == 0`, worker panic).
    pub fn receive_parallel_threads(
        &mut self,
        uploads: Vec<SequencedUpload>,
        threads: usize,
    ) -> Result<Vec<ReceiveOutcome>, SimError> {
        for sequenced in &uploads {
            self.log_frame(&sequenced.encode())?;
        }
        let outcomes = self.inner.receive_parallel_threads(uploads, threads);
        self.maybe_checkpoint()?;
        Ok(outcomes)
    }

    /// [`ShardedServer::finish_period`], followed by a mandatory
    /// checkpoint: closing a period folds uploads into history and
    /// drops them, a transition the WAL does not record — the
    /// checkpoint is what keeps recovery from resurrecting the closed
    /// period's uploads as current.
    ///
    /// # Errors
    ///
    /// Propagates sizing failures and [`SimError::Durability`] from the
    /// checkpoint publication.
    pub fn finish_period(
        &mut self,
    ) -> Result<std::collections::BTreeMap<vcps_core::RsuId, usize>, SimError> {
        let sizes = self.inner.finish_period()?;
        self.checkpoint_now()?;
        Ok(sizes)
    }

    /// The wrapped server — all reads (estimates, O–D matrices) go
    /// through here and are bit-identical to a non-durable server's.
    #[must_use]
    pub fn server(&self) -> &ShardedServer {
        &self.inner
    }

    /// Consumes the wrapper, yielding the wrapped server (the WAL file
    /// and checkpoints stay on disk).
    #[must_use]
    pub fn into_server(self) -> ShardedServer {
        self.inner
    }

    /// The attached observability handle (the wrapped server's).
    #[must_use]
    pub fn obs(&self) -> &Obs {
        self.inner.obs()
    }

    /// Re-seeds an RSU's historical average (see
    /// [`ShardedServer::seed_history`]). Seeds are engine-provided
    /// configuration, not logged state — a recovering driver re-applies
    /// them after [`recover`](Self::recover).
    pub fn seed_history(&mut self, rsu: vcps_core::RsuId, average: f64) {
        self.inner.seed_history(rsu, average);
    }

    /// WAL records appended so far (including those found by
    /// recovery).
    #[must_use]
    pub fn records_logged(&self) -> u64 {
        self.records_logged
    }

    /// The WAL file's path.
    #[must_use]
    pub fn wal_path(&self) -> &Path {
        self.wal.path()
    }

    /// The checkpoint directory.
    #[must_use]
    pub fn checkpoint_dir(&self) -> PathBuf {
        self.store.dir().to_path_buf()
    }
}

/// Adapts a [`DurableServer`] to the infallible
/// [`crate::faults::SequencedSink`] trait so the retrying upload path
/// ([`crate::faults::upload_with_retry`]) can deliver into it: the
/// trait returns plain outcomes, so a WAL failure is *stashed* instead
/// of propagated — the sink stops applying frames (returning a
/// placeholder [`ReceiveOutcome::Stale`]) and the driver must check
/// [`take_error`](DurableSink::take_error) after each delivery session
/// and abort the run on `Some`.
#[derive(Debug)]
pub struct DurableSink<'a> {
    server: &'a mut DurableServer,
    error: Option<SimError>,
}

impl<'a> DurableSink<'a> {
    /// Wraps a durable server for one delivery session.
    pub fn new(server: &'a mut DurableServer) -> Self {
        Self {
            server,
            error: None,
        }
    }

    /// The first durability failure since construction (or the last
    /// [`take_error`](Self::take_error)), if any. Once set, subsequent
    /// frames were not logged or applied.
    pub fn take_error(&mut self) -> Option<SimError> {
        self.error.take()
    }
}

impl crate::faults::SequencedSink for DurableSink<'_> {
    fn ingest_sequenced(&mut self, sequenced: SequencedUpload) -> ReceiveOutcome {
        if self.error.is_some() {
            return ReceiveOutcome::Stale;
        }
        match self.server.receive_sequenced(sequenced) {
            Ok(outcome) => outcome,
            Err(e) => {
                self.error = Some(e);
                ReceiveOutcome::Stale
            }
        }
    }

    fn ingest_batch(&mut self, batch: BatchUpload) -> Vec<ReceiveOutcome> {
        if self.error.is_some() {
            return Vec::new();
        }
        match self.server.receive_batch(batch) {
            Ok(outcomes) => outcomes,
            Err(e) => {
                self.error = Some(e);
                Vec::new()
            }
        }
    }

    fn sink_obs(&self) -> &Obs {
        self.server.obs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcps_core::{BitArray, RsuId, Scheme};

    use crate::protocol::PeriodUpload;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "vcps-sim-durable-test-{}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn scheme() -> Scheme {
        Scheme::variable(2, 3.0, 9).unwrap()
    }

    fn sequenced(rsu: u64, seq: u64, ones: &[usize]) -> SequencedUpload {
        let mut bits = BitArray::new(256);
        for &i in ones {
            bits.set(i);
        }
        SequencedUpload {
            seq,
            upload: PeriodUpload {
                rsu: RsuId(rsu),
                counter: ones.len() as u64,
                bits,
            },
        }
    }

    #[test]
    fn options_reject_zero_interval() {
        let dir = temp_dir("opts");
        assert!(DurableServer::create(
            scheme(),
            1.0,
            2,
            &dir,
            DurableOptions::log_only().with_checkpoint_every(0),
            &Obs::disabled(),
        )
        .is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dropping_with_buffered_records_is_counted() {
        let dir = temp_dir("drop-counted");
        let obs = Obs::enabled(Level::Info);
        let mut durable = DurableServer::create(
            scheme(),
            1.0,
            2,
            &dir,
            DurableOptions::log_only().with_flush(FlushPolicy::Manual),
            &obs,
        )
        .unwrap();
        durable
            .receive_sequenced(sequenced(1, 0, &[3, 77]))
            .unwrap();
        durable.receive_sequenced(sequenced(2, 0, &[9])).unwrap();
        // Simulated crash: two acknowledged frames never hit disk.
        drop(durable);
        let snap = obs.snapshot();
        assert_eq!(snap.counters["wal.dropped_buffered_records"], 2);
        assert!(snap.counters["wal.dropped_buffered_bytes"] > 0);

        // An explicit flush before drop leaves the counters untouched.
        let dir2 = temp_dir("drop-flushed");
        let obs2 = Obs::enabled(Level::Info);
        let mut durable = DurableServer::create(
            scheme(),
            1.0,
            2,
            &dir2,
            DurableOptions::log_only().with_flush(FlushPolicy::Manual),
            &obs2,
        )
        .unwrap();
        durable
            .receive_sequenced(sequenced(1, 0, &[3, 77]))
            .unwrap();
        durable.flush_wal().unwrap();
        drop(durable);
        assert!(!obs2
            .snapshot()
            .counters
            .contains_key("wal.dropped_buffered_records"));
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&dir2).unwrap();
    }

    #[test]
    fn crash_and_recover_reproduces_state_bit_identically() {
        let dir = temp_dir("recover");
        let obs = Obs::disabled();
        let mut reference = ShardedServer::new(scheme(), 1.0, 4).unwrap();
        let mut durable = DurableServer::create(
            scheme(),
            1.0,
            4,
            &dir,
            DurableOptions::log_only().with_checkpoint_every(3),
            &obs,
        )
        .unwrap();
        // A stream exercising every verdict: fresh, duplicate,
        // conflicting, stale.
        let frames = vec![
            sequenced(1, 0, &[3, 77]),
            sequenced(2, 0, &[9]),
            sequenced(1, 0, &[3, 77]), // duplicate
            sequenced(2, 0, &[9, 10]), // conflicting
            sequenced(3, 2, &[0]),
            sequenced(3, 1, &[200]), // stale
            sequenced(9, 5, &[8, 16, 32]),
        ];
        for f in &frames {
            let expected = reference.receive_sequenced(f.clone());
            let got = durable.receive_sequenced(f.clone()).unwrap();
            assert_eq!(got, expected);
        }
        let logged = durable.records_logged();
        drop(durable); // the crash: all in-memory state gone
        let (recovered, report) =
            DurableServer::recover(scheme(), 1.0, 4, &dir, DurableOptions::log_only(), &obs)
                .unwrap();
        assert_eq!(report.tail_error, None);
        assert_eq!(report.truncated_bytes, 0);
        assert_eq!(report.checkpoint_records + report.replayed_records, logged);
        assert!(report.checkpoint_records > 0, "interval 3 must have fired");
        assert_eq!(recovered.records_logged(), logged);
        // Durable-state equality via the checkpoint image (PartialEq on
        // the wrapped servers' snapshots — derived caches excluded).
        assert_eq!(
            recovered.server().checkpoint(0),
            reference.checkpoint(0),
            "recovered state must be bit-identical"
        );
        // And the recovered server keeps ingesting correctly.
        let mut recovered = recovered;
        let f = sequenced(3, 1, &[200]);
        assert_eq!(
            recovered.receive_sequenced(f.clone()).unwrap(),
            reference.receive_sequenced(f)
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_tolerates_torn_tail() {
        let dir = temp_dir("torn");
        let obs = Obs::disabled();
        let mut durable =
            DurableServer::create(scheme(), 1.0, 2, &dir, DurableOptions::log_only(), &obs)
                .unwrap();
        let mut reference = ShardedServer::new(scheme(), 1.0, 2).unwrap();
        for i in 0..4u64 {
            let f = sequenced(i + 1, 0, &[i as usize]);
            durable.receive_sequenced(f.clone()).unwrap();
            if i < 3 {
                reference.receive_sequenced(f);
            }
        }
        let wal = durable.wal_path().to_path_buf();
        drop(durable);
        // Tear the last record mid-payload.
        let bytes = std::fs::read(&wal).unwrap();
        std::fs::write(&wal, &bytes[..bytes.len() - 3]).unwrap();
        let (recovered, report) =
            DurableServer::recover(scheme(), 1.0, 2, &dir, DurableOptions::log_only(), &obs)
                .unwrap();
        assert!(matches!(
            report.tail_error,
            Some(DurabilityError::TruncatedRecord { .. })
        ));
        assert!(report.truncated_bytes > 0);
        assert_eq!(recovered.records_logged(), 3);
        assert_eq!(recovered.server().checkpoint(0), reference.checkpoint(0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_rejects_topology_mismatch() {
        let dir = temp_dir("topology");
        let obs = Obs::disabled();
        let mut durable = DurableServer::create(
            scheme(),
            1.0,
            4,
            &dir,
            DurableOptions::log_only().with_checkpoint_every(1),
            &obs,
        )
        .unwrap();
        durable.receive_sequenced(sequenced(1, 0, &[5])).unwrap();
        drop(durable);
        assert!(matches!(
            DurableServer::recover(scheme(), 1.0, 2, &dir, DurableOptions::log_only(), &obs),
            Err(SimError::Core(CoreError::InvalidConfig {
                parameter: "shard_count",
                ..
            }))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_of_missing_directory_starts_fresh() {
        let dir = temp_dir("fresh").join("never-written");
        let obs = Obs::disabled();
        let (server, report) =
            DurableServer::recover(scheme(), 1.0, 2, &dir, DurableOptions::log_only(), &obs)
                .unwrap();
        assert_eq!(report.replayed_records, 0);
        assert_eq!(report.checkpoint_records, 0);
        assert_eq!(server.records_logged(), 0);
        std::fs::remove_dir_all(dir.parent().unwrap()).unwrap();
    }

    #[test]
    fn batch_frames_log_as_one_record_and_replay() {
        let dir = temp_dir("batch");
        let obs = Obs::disabled();
        let mut durable =
            DurableServer::create(scheme(), 1.0, 2, &dir, DurableOptions::log_only(), &obs)
                .unwrap();
        let mut reference = ShardedServer::new(scheme(), 1.0, 2).unwrap();
        let batch =
            BatchUpload::new(vec![sequenced(1, 0, &[5]), sequenced(2, 0, &[6, 7])]).unwrap();
        let expected = reference.receive_batch(batch.clone());
        assert_eq!(durable.receive_batch(batch).unwrap(), expected);
        assert_eq!(durable.records_logged(), 1, "one record per batch");
        drop(durable);
        let (recovered, report) =
            DurableServer::recover(scheme(), 1.0, 2, &dir, DurableOptions::log_only(), &obs)
                .unwrap();
        assert_eq!(report.replayed_records, 1);
        assert_eq!(recovered.server().checkpoint(0), reference.checkpoint(0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn parallel_ingest_logs_in_input_order() {
        let dir = temp_dir("parallel");
        let obs = Obs::disabled();
        let mut durable =
            DurableServer::create(scheme(), 1.0, 4, &dir, DurableOptions::log_only(), &obs)
                .unwrap();
        let mut reference = ShardedServer::new(scheme(), 1.0, 4).unwrap();
        let uploads: Vec<SequencedUpload> =
            (1..=8u64).map(|r| sequenced(r, 0, &[r as usize])).collect();
        let expected = reference.receive_parallel_threads(uploads.clone(), 1);
        assert_eq!(
            durable
                .receive_parallel_threads(uploads.clone(), 4)
                .unwrap(),
            expected
        );
        drop(durable);
        let (recovered, report) =
            DurableServer::recover(scheme(), 1.0, 4, &dir, DurableOptions::log_only(), &obs)
                .unwrap();
        assert_eq!(report.replayed_records, 8);
        assert_eq!(recovered.server().checkpoint(0), reference.checkpoint(0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The wire batch path logs the raw wire bytes as one record —
    /// byte-identical to the frame that arrived — and replays to the
    /// same state as the owned path.
    #[test]
    fn batch_wire_logs_raw_bytes_and_replays() {
        let dir = temp_dir("batch-wire");
        let obs = Obs::disabled();
        let mut durable =
            DurableServer::create(scheme(), 1.0, 2, &dir, DurableOptions::log_only(), &obs)
                .unwrap();
        let mut reference = ShardedServer::new(scheme(), 1.0, 2).unwrap();
        let batch =
            BatchUpload::new(vec![sequenced(1, 0, &[5]), sequenced(2, 0, &[6, 7])]).unwrap();
        let wire = batch.encode();
        let expected = reference.receive_batch(batch);
        assert_eq!(durable.receive_batch_wire(&wire).unwrap(), expected);
        assert_eq!(durable.records_logged(), 1, "one record per batch");
        // The log holds the wire bytes verbatim — no re-encode drift.
        let logged = read_wal(durable.wal_path()).unwrap();
        assert_eq!(logged.records, vec![wire.to_vec()]);
        // A malformed wire is rejected without logging anything.
        assert!(durable.receive_batch_wire(&wire[..wire.len() - 1]).is_err());
        assert_eq!(durable.records_logged(), 1);
        drop(durable);
        let (recovered, report) =
            DurableServer::recover(scheme(), 1.0, 2, &dir, DurableOptions::log_only(), &obs)
                .unwrap();
        assert_eq!(report.replayed_records, 1);
        assert_eq!(recovered.server().checkpoint(0), reference.checkpoint(0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn options_reject_zero_flush_thresholds() {
        let dir = temp_dir("flush-opts");
        for flush in [FlushPolicy::EveryRecords(0), FlushPolicy::EveryBytes(0)] {
            assert!(DurableServer::create(
                scheme(),
                1.0,
                2,
                &dir,
                DurableOptions::log_only().with_flush(flush),
                &Obs::disabled(),
            )
            .is_err());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Group commit: a crash loses exactly the buffered (unflushed)
    /// tail, and recovery reproduces the state of a reference server
    /// fed the surviving prefix. `finish_period` (checkpoint) is a
    /// flush boundary, so a closed period is never lost.
    #[test]
    fn group_commit_crash_loses_only_the_buffered_tail() {
        let dir = temp_dir("group-commit");
        let obs = Obs::disabled();
        let options = DurableOptions::log_only().with_flush(FlushPolicy::EveryRecords(3));
        let mut durable = DurableServer::create(scheme(), 1.0, 2, &dir, options, &obs).unwrap();
        // 8 frames under flush-every-3: records 1..=6 are flushed, 7–8
        // sit in the buffer when the crash hits.
        let frames: Vec<SequencedUpload> =
            (1..=8u64).map(|r| sequenced(r, 0, &[r as usize])).collect();
        for f in &frames {
            durable.receive_sequenced(f.clone()).unwrap();
        }
        drop(durable); // crash: buffered tail gone
        let (recovered, report) =
            DurableServer::recover(scheme(), 1.0, 2, &dir, options, &obs).unwrap();
        assert_eq!(report.tail_error, None, "a lost tail is not a torn tail");
        assert_eq!(recovered.records_logged(), 6);
        let mut reference = ShardedServer::new(scheme(), 1.0, 2).unwrap();
        for f in &frames[..6] {
            reference.receive_sequenced(f.clone());
        }
        assert_eq!(recovered.server().checkpoint(0), reference.checkpoint(0));

        // Same stream, but with an explicit flush boundary before the
        // crash: nothing is lost.
        let dir2 = temp_dir("group-commit-flushed");
        let mut durable = DurableServer::create(scheme(), 1.0, 2, &dir2, options, &obs).unwrap();
        let mut reference = ShardedServer::new(scheme(), 1.0, 2).unwrap();
        for f in &frames {
            durable.receive_sequenced(f.clone()).unwrap();
            reference.receive_sequenced(f.clone());
        }
        durable.flush_wal().unwrap();
        drop(durable);
        let (recovered, _) =
            DurableServer::recover(scheme(), 1.0, 2, &dir2, options, &obs).unwrap();
        assert_eq!(recovered.records_logged(), 8);
        assert_eq!(recovered.server().checkpoint(0), reference.checkpoint(0));
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&dir2).unwrap();
    }

    /// A checkpoint must never claim records the log does not durably
    /// hold: under Manual flushing, `checkpoint_now` (and thus
    /// `finish_period`) flushes the WAL before publishing, so the
    /// recovered checkpoint is always covered by the log prefix.
    #[test]
    fn checkpoint_flushes_buffered_records_first() {
        let dir = temp_dir("ckpt-flush");
        let obs = Obs::disabled();
        let options = DurableOptions::log_only().with_flush(FlushPolicy::Manual);
        let mut durable = DurableServer::create(scheme(), 1.0, 2, &dir, options, &obs).unwrap();
        let mut reference = ShardedServer::new(scheme(), 1.0, 2).unwrap();
        for f in [sequenced(1, 0, &[5]), sequenced(2, 0, &[6])] {
            durable.receive_sequenced(f.clone()).unwrap();
            reference.receive_sequenced(f);
        }
        durable.finish_period().unwrap();
        reference.finish_period().unwrap();
        drop(durable); // no explicit flush after the checkpoint
        let (recovered, report) =
            DurableServer::recover(scheme(), 1.0, 2, &dir, options, &obs).unwrap();
        assert_eq!(report.checkpoint_records, 2, "checkpoint covered by log");
        assert_eq!(recovered.server().upload_count(), 0);
        assert_eq!(recovered.server().checkpoint(0), reference.checkpoint(0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn finish_period_checkpoint_prevents_upload_resurrection() {
        let dir = temp_dir("finish");
        let obs = Obs::disabled();
        let mut durable =
            DurableServer::create(scheme(), 1.0, 2, &dir, DurableOptions::log_only(), &obs)
                .unwrap();
        let mut reference = ShardedServer::new(scheme(), 1.0, 2).unwrap();
        for f in [sequenced(1, 0, &[5]), sequenced(2, 0, &[6])] {
            durable.receive_sequenced(f.clone()).unwrap();
            reference.receive_sequenced(f);
        }
        durable.finish_period().unwrap();
        reference.finish_period().unwrap();
        drop(durable);
        let (recovered, _) =
            DurableServer::recover(scheme(), 1.0, 2, &dir, DurableOptions::log_only(), &obs)
                .unwrap();
        assert_eq!(recovered.server().upload_count(), 0);
        assert_eq!(recovered.server().checkpoint(0), reference.checkpoint(0));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
