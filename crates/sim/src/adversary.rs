//! The tracking adversary: measures *empirical* preserved privacy.
//!
//! The paper's privacy definition (§II-B, §VI) is the probability `p`
//! that a bit observed set in both RSUs' arrays does **not** witness a
//! common vehicle. Eq. 43 derives `p` analytically; this module measures
//! it directly: it runs an instrumented encoding pass that remembers, for
//! every bit, whether a common vehicle contributed to it, then plays the
//! adversary — look at all positions set in both `B_x^u` and `B_y` and
//! count how many are *not* explained by a common vehicle.
//!
//! Agreement between [`observe_pair`] and
//! `vcps_analysis::privacy::preserved_privacy` is checked in this
//! module's tests and reported in EXPERIMENTS.md.

use vcps_core::{RsuId, Scheme};

use crate::synthetic::SyntheticPair;
use crate::SimError;

/// Counts accumulated by the adversary over one measurement period.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PrivacyObservation {
    /// Positions `i` with `B_x^u[i] = B_y[i] = 1` (event `A`).
    pub both_set: usize,
    /// Of those, positions where neither side's bit was touched by any
    /// common vehicle (event `E` — the trace is a false positive for the
    /// tracker).
    pub untraceable: usize,
}

impl PrivacyObservation {
    /// The empirical preserved privacy `untraceable / both_set`; `None`
    /// when no position is set in both arrays (nothing to track — the
    /// analytic convention treats this as perfect privacy).
    #[must_use]
    pub fn empirical_privacy(&self) -> Option<f64> {
        if self.both_set == 0 {
            None
        } else {
            Some(self.untraceable as f64 / self.both_set as f64)
        }
    }

    /// Merges counts from an independent run (for averaging over seeds).
    pub fn merge(&mut self, other: &PrivacyObservation) {
        self.both_set += other.both_set;
        self.untraceable += other.untraceable;
    }
}

/// Runs one instrumented period over `workload` and returns the
/// adversary's counts.
///
/// Arrays are sized by `scheme` from the workload's exact volumes; the
/// smaller array is unfolded against the larger exactly as in the decode
/// path.
///
/// # Errors
///
/// Returns [`SimError::Core`] if array sizing fails.
pub fn observe_pair(
    scheme: &Scheme,
    workload: &SyntheticPair,
    rsu_x: RsuId,
    rsu_y: RsuId,
) -> Result<PrivacyObservation, SimError> {
    let m_x = scheme.array_size_for(workload.n_x() as f64)?;
    let m_y = scheme.array_size_for(workload.n_y() as f64)?;
    let m_o = m_x.max(m_y);

    // Attribution bitmaps: was each bit set at all / set by a common
    // vehicle?
    let mut x_any = vec![false; m_x];
    let mut x_common = vec![false; m_x];
    let mut y_any = vec![false; m_y];
    let mut y_common = vec![false; m_y];

    for v in &workload.common {
        let bx = scheme.report_index(v, rsu_x, m_x, m_o);
        x_any[bx] = true;
        x_common[bx] = true;
        let by = scheme.report_index(v, rsu_y, m_y, m_o);
        y_any[by] = true;
        y_common[by] = true;
    }
    for v in &workload.only_x {
        x_any[scheme.report_index(v, rsu_x, m_x, m_o)] = true;
    }
    for v in &workload.only_y {
        y_any[scheme.report_index(v, rsu_y, m_y, m_o)] = true;
    }

    // The adversary scans the combined (unfolded) index space.
    let (large_len, small_len) = (m_x.max(m_y), m_x.min(m_y));
    let (small_any, small_common, large_any, large_common) = if m_x <= m_y {
        (&x_any, &x_common, &y_any, &y_common)
    } else {
        (&y_any, &y_common, &x_any, &x_common)
    };
    let mut obs = PrivacyObservation::default();
    for i in 0..large_len {
        let j = i % small_len;
        if small_any[j] && large_any[i] {
            obs.both_set += 1;
            if !small_common[j] && !large_common[i] {
                obs.untraceable += 1;
            }
        }
    }
    Ok(obs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcps_analysis::{privacy, PairParams};

    fn empirical(f: f64, s: usize, n_x: u64, n_y: u64, n_c: u64, seeds: u64) -> f64 {
        let scheme = Scheme::variable(s, f, 31).unwrap();
        let mut total = PrivacyObservation::default();
        for seed in 0..seeds {
            let workload = SyntheticPair::generate(n_x, n_y, n_c, seed);
            let obs = observe_pair(&scheme, &workload, RsuId(1), RsuId(2)).unwrap();
            total.merge(&obs);
        }
        total.empirical_privacy().expect("some bits collide")
    }

    fn analytic(f: f64, s: usize, n_x: u64, n_y: u64, n_c: u64) -> f64 {
        // Use the actual power-of-two sizes the scheme picks, not f·n.
        let scheme = Scheme::variable(s, f, 31).unwrap();
        let m_x = scheme.array_size_for(n_x as f64).unwrap() as f64;
        let m_y = scheme.array_size_for(n_y as f64).unwrap() as f64;
        let p = PairParams::new(n_x as f64, n_y as f64, n_c as f64, m_x, m_y, s as f64).unwrap();
        privacy::preserved_privacy(&p)
    }

    #[test]
    fn empirical_matches_analytic_equal_traffic() {
        let (f, s, n) = (3.0, 2, 4_000u64);
        let emp = empirical(f, s, n, n, n / 10, 8);
        let ana = analytic(f, s, n, n, n / 10);
        assert!(
            (emp - ana).abs() < 0.05,
            "empirical {emp} vs analytic {ana}"
        );
    }

    #[test]
    fn empirical_matches_analytic_skewed_traffic() {
        let (f, s) = (3.0, 2);
        let emp = empirical(f, s, 2_000, 20_000, 200, 8);
        let ana = analytic(f, s, 2_000, 20_000, 200);
        assert!(
            (emp - ana).abs() < 0.05,
            "empirical {emp} vs analytic {ana}"
        );
    }

    #[test]
    fn unfolding_improves_empirical_privacy_under_skew() {
        // §VI-B's claim, observed rather than derived: skewed pairs under
        // variable sizing preserve more privacy than equal pairs.
        let equal = empirical(3.0, 5, 4_000, 4_000, 400, 6);
        let skewed = empirical(3.0, 5, 4_000, 40_000, 400, 6);
        assert!(skewed > equal, "skewed {skewed} should beat equal {equal}");
    }

    #[test]
    fn merge_accumulates() {
        let mut a = PrivacyObservation {
            both_set: 10,
            untraceable: 4,
        };
        a.merge(&PrivacyObservation {
            both_set: 30,
            untraceable: 16,
        });
        assert_eq!(a.both_set, 40);
        assert_eq!(a.untraceable, 20);
        assert_eq!(a.empirical_privacy(), Some(0.5));
    }

    #[test]
    fn empty_observation_has_no_privacy_sample() {
        assert_eq!(PrivacyObservation::default().empirical_privacy(), None);
    }
}
