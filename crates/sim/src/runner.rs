use vcps_core::estimator::Estimate;
use vcps_core::{RsuId, Scheme, VehicleIdentity};
use vcps_hash::splitmix64;
use vcps_obs::{Obs, Phase};

use crate::concurrent::{self, SharedRsu};
use crate::pki::TrustedAuthority;
use crate::protocol::{BatchUpload, BitReport, PeriodUpload, SequencedUpload};
use crate::synthetic::SyntheticPair;
use crate::{CentralServer, ShardedServer, SimError, SimVehicle};

/// Runs the complete protocol for one two-RSU measurement period:
/// queries, certificate checks, bit reports, wire-encoded uploads, and
/// the server-side decode.
///
/// This is the workhorse of the Fig. 4/5 experiments: feed it a
/// [`SyntheticPair`] workload and compare
/// [`PairOutcome::estimate`] against [`PairOutcome::true_n_c`].
#[derive(Debug, Clone)]
pub struct PairRunner {
    scheme: Scheme,
    rsu_a: RsuId,
    rsu_b: RsuId,
    history: Option<(f64, f64)>,
    authority: TrustedAuthority,
    mac_seed: u64,
    threads: usize,
    shards: Option<usize>,
    obs: Obs,
}

/// The result of one [`PairRunner::run`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairOutcome {
    /// The server's decoded estimate.
    pub estimate: Estimate,
    /// The workload's true overlap `n_c`.
    pub true_n_c: u64,
}

impl PairOutcome {
    /// Relative error `|n̂_c − n_c| / n_c` (Table I's `r`); `None` when
    /// the true overlap is zero.
    #[must_use]
    pub fn relative_error(&self) -> Option<f64> {
        self.estimate.relative_error(self.true_n_c as f64)
    }
}

impl PairRunner {
    /// Creates a runner for two RSU ids under a scheme.
    ///
    /// # Panics
    ///
    /// Panics if the two ids are equal.
    #[must_use]
    pub fn new(scheme: Scheme, rsu_a: RsuId, rsu_b: RsuId) -> Self {
        assert_ne!(rsu_a, rsu_b, "a pair needs two distinct RSUs");
        Self {
            scheme,
            rsu_a,
            rsu_b,
            history: None,
            authority: TrustedAuthority::new(0xCA11_AB1E),
            mac_seed: 0xD15C_0DE5,
            threads: 1,
            shards: None,
            obs: Obs::disabled(),
        }
    }

    /// Attaches an observability handle: report generation is profiled
    /// as [`Phase::Encode`], ingestion as [`Phase::Receive`], and the
    /// server-side decode as [`Phase::Decode`] (plus kernel-choice
    /// counters). Communication metrics are bridged into the registry as
    /// `comm.*` counters after each run. Recording never changes the
    /// outcome — results are bit-identical with observability on or off.
    #[must_use]
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Uses `threads` workers for report generation and ingestion.
    ///
    /// The result is bit-identical to the sequential run: each vehicle's
    /// MAC stream is keyed by its global passage index (not by execution
    /// order), and ingestion is commutative bit-setting plus a commutative
    /// counter (see [`crate::concurrent`]). The default is 1 because the
    /// experiment harness already parallelizes *across* trials; switch
    /// this on for single large runs.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        self.threads = threads;
        self
    }

    /// Ingests through a [`ShardedServer`] with `shards` shards instead
    /// of the monolithic [`CentralServer`]: both period uploads ride a
    /// single wire-encoded [`BatchUpload`] frame into the sharded path.
    /// Estimates are bit-identical to the monolithic run — that is the
    /// sharding layer's core contract (DESIGN.md §15) — so this switch
    /// exists to exercise the batch ingestion path end to end from the
    /// accuracy experiments, not to change results.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        self.shards = Some(shards);
        self
    }

    /// Sets the historical average volumes used for array sizing. Without
    /// this the runner sizes arrays from the workload's exact volumes
    /// (perfect history).
    #[must_use]
    pub fn with_history(mut self, avg_a: f64, avg_b: f64) -> Self {
        self.history = Some((avg_a, avg_b));
        self
    }

    /// Overrides the MAC-randomness seed (purely cosmetic in results).
    #[must_use]
    pub fn with_mac_seed(mut self, seed: u64) -> Self {
        self.mac_seed = seed;
        self
    }

    /// Executes one full measurement period over the workload.
    ///
    /// Uploads are round-tripped through the wire encoding, so this
    /// exercises the entire message path.
    ///
    /// # Errors
    ///
    /// Propagates scheme and protocol failures; saturation is *not* an
    /// error here — the estimate is clamped and flagged
    /// ([`Estimate::clamped`]), because the Fig. 4 baseline saturates by
    /// design and we want to plot it anyway.
    pub fn run(&self, workload: &SyntheticPair) -> Result<PairOutcome, SimError> {
        Ok(self.run_with_metrics(workload)?.0)
    }

    /// Like [`PairRunner::run`] but also accounts every message and byte
    /// exchanged (see [`crate::metrics::CommunicationMetrics`]).
    ///
    /// # Errors
    ///
    /// Same as [`PairRunner::run`].
    pub fn run_with_metrics(
        &self,
        workload: &SyntheticPair,
    ) -> Result<(PairOutcome, crate::CommunicationMetrics), SimError> {
        let (avg_a, avg_b) = self
            .history
            .unwrap_or((workload.n_x() as f64, workload.n_y() as f64));
        let m_a = self.scheme.array_size_for(avg_a)?;
        let m_b = self.scheme.array_size_for(avg_b)?;
        let m_o = m_a.max(m_b);

        let rsu_a = SharedRsu::new(self.rsu_a, m_a, &self.authority)?;
        let rsu_b = SharedRsu::new(self.rsu_b, m_b, &self.authority)?;
        let query_a = rsu_a.query();
        let query_b = rsu_b.query();

        // Each passage's MAC stream is keyed by its *global* passage
        // index (x side first, 1-based), so report content is identical
        // no matter how the work is split across threads.
        let identities_x: Vec<VehicleIdentity> = workload.at_x().copied().collect();
        let identities_y: Vec<VehicleIdentity> = workload.at_y().copied().collect();
        let base_y = identities_x.len() as u64;
        let (reports_a, reports_b) = {
            let _encode = self.obs.phase(Phase::Encode);
            (
                self.make_reports(&query_a, identities_x, 0, m_o)?,
                self.make_reports(&query_b, identities_y, base_y, m_o)?,
            )
        };

        let mut metrics = crate::CommunicationMetrics::new();
        for report in &reports_a {
            metrics.record_exchange(&query_a, report);
        }
        for report in &reports_b {
            metrics.record_exchange(&query_b, report);
        }
        {
            let _receive = self.obs.phase(Phase::Receive);
            self.ingest(&rsu_a, &reports_a)?;
            self.ingest(&rsu_b, &reports_b)?;
        }

        let uploads: Vec<PeriodUpload> = [&rsu_a, &rsu_b].map(|rsu| rsu.upload()).into();
        for upload in &uploads {
            metrics.record_upload(upload);
        }
        let estimate = match self.shards {
            None => {
                let mut server =
                    CentralServer::new(self.scheme.clone(), 1.0)?.with_obs(self.obs.clone());
                for upload in &uploads {
                    let wire = upload.encode_compact();
                    server.receive(PeriodUpload::decode(&wire)?);
                }
                server.estimate_or_clamp(self.rsu_a, self.rsu_b)?
            }
            Some(shards) => {
                let mut server = ShardedServer::new(self.scheme.clone(), 1.0, shards)?
                    .with_obs(self.obs.clone());
                let frames: Vec<SequencedUpload> = uploads
                    .iter()
                    .map(|upload| SequencedUpload {
                        seq: 0,
                        upload: upload.clone(),
                    })
                    .collect();
                let wire = BatchUpload::new(frames)?.encode();
                let _ = server.receive_batch(BatchUpload::decode(&wire)?);
                server.estimate_or_clamp(self.rsu_a, self.rsu_b)?
            }
        };
        metrics.record_into(&self.obs);
        Ok((
            PairOutcome {
                estimate,
                true_n_c: workload.n_c(),
            },
            metrics,
        ))
    }

    /// Generates one report per identity, numbering passages from
    /// `base + 1`. Sequential when the runner has one thread, chunked
    /// across workers otherwise — same output either way.
    fn make_reports(
        &self,
        query: &crate::Query,
        identities: Vec<VehicleIdentity>,
        base: u64,
        m_o: usize,
    ) -> Result<Vec<BitReport>, SimError> {
        let answer = |counter: u64, identity: VehicleIdentity| {
            let mut vehicle = SimVehicle::new(identity, splitmix64(self.mac_seed ^ counter));
            vehicle.answer(query, &self.scheme, &self.authority, m_o)
        };
        if self.threads == 1 {
            return identities
                .into_iter()
                .enumerate()
                .map(|(i, identity)| answer(base + i as u64 + 1, identity))
                .collect();
        }
        let indexed: Vec<(u64, VehicleIdentity)> = identities
            .into_iter()
            .enumerate()
            .map(|(i, identity)| (base + i as u64 + 1, identity))
            .collect();
        concurrent::parallel_map_threads(indexed, self.threads, |&(counter, identity)| {
            answer(counter, identity)
        })
        .into_iter()
        .collect()
    }

    fn ingest(&self, rsu: &SharedRsu, reports: &[BitReport]) -> Result<(), SimError> {
        if self.threads == 1 {
            for report in reports {
                rsu.receive(report)?;
            }
            Ok(())
        } else {
            concurrent::try_ingest_parallel(rsu, reports, self.threads)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variable_scheme_recovers_overlap_at_10x_skew() {
        let scheme = Scheme::variable(2, 3.0, 5).unwrap();
        let workload = SyntheticPair::generate(2_000, 20_000, 500, 11);
        let outcome = PairRunner::new(scheme, RsuId(1), RsuId(2))
            .run(&workload)
            .unwrap();
        let rel = outcome.relative_error().unwrap();
        assert!(
            rel < 0.25,
            "estimate {} vs 500 (rel {rel})",
            outcome.estimate.n_c
        );
        assert!(!outcome.estimate.clamped);
    }

    #[test]
    fn fixed_scheme_saturates_under_heavy_traffic() {
        // m sized for the light RSU (2k): the heavy RSU (200k vehicles)
        // fills every bit, exactly the Fig. 4 failure mode.
        let scheme = Scheme::fixed(2, 4_096, 5).unwrap();
        let workload = SyntheticPair::generate(2_000, 200_000, 500, 12);
        let outcome = PairRunner::new(scheme, RsuId(1), RsuId(2))
            .run(&workload)
            .unwrap();
        assert!(
            outcome.estimate.clamped,
            "the heavy RSU's 4k array must saturate"
        );
    }

    #[test]
    fn equal_traffic_fixed_and_variable_agree() {
        // With n_x = n_y the variable scheme degenerates to the baseline
        // (same m both sides) — both should be accurate.
        let workload = SyntheticPair::generate(10_000, 10_000, 2_000, 13);
        let variable = PairRunner::new(Scheme::variable(2, 3.0, 5).unwrap(), RsuId(1), RsuId(2))
            .run(&workload)
            .unwrap();
        let fixed = PairRunner::new(Scheme::fixed(2, 32_768, 5).unwrap(), RsuId(1), RsuId(2))
            .run(&workload)
            .unwrap();
        assert!(variable.relative_error().unwrap() < 0.1);
        assert!(fixed.relative_error().unwrap() < 0.1);
    }

    #[test]
    fn history_overrides_sizing() {
        let scheme = Scheme::variable(2, 3.0, 5).unwrap();
        let workload = SyntheticPair::generate(1_000, 1_000, 100, 14);
        let outcome = PairRunner::new(scheme, RsuId(1), RsuId(2))
            .with_history(100_000.0, 100_000.0)
            .run(&workload)
            .unwrap();
        // Arrays sized for 100k×3 → 2^19 even though only 1k vehicles pass.
        assert_eq!(outcome.estimate.m_x, 1 << 19);
    }

    #[test]
    fn metrics_account_every_message() {
        let scheme = Scheme::variable(2, 3.0, 5).unwrap();
        let workload = SyntheticPair::generate(500, 1_500, 100, 21);
        let (outcome, metrics) = PairRunner::new(scheme, RsuId(1), RsuId(2))
            .run_with_metrics(&workload)
            .unwrap();
        // One exchange per passage: n_x + n_y.
        assert_eq!(metrics.reports, 500 + 1_500);
        assert_eq!(metrics.queries, metrics.reports);
        assert_eq!(metrics.uploads, 2);
        // Query (33 B) + report (15 B) per passage.
        assert_eq!(metrics.bytes_per_passage(), Some(48.0));
        assert!(metrics.upload_bytes_compact <= metrics.upload_bytes_dense);
        assert_eq!(outcome.true_n_c, 100);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn same_rsu_twice_panics() {
        let scheme = Scheme::variable(2, 3.0, 5).unwrap();
        let _ = PairRunner::new(scheme, RsuId(1), RsuId(1));
    }

    #[test]
    fn threaded_run_is_bit_identical_to_sequential() {
        let scheme = Scheme::variable(2, 3.0, 5).unwrap();
        let workload = SyntheticPair::generate(3_000, 9_000, 700, 17);
        let sequential = PairRunner::new(scheme.clone(), RsuId(1), RsuId(2));
        let (seq_out, seq_metrics) = sequential.run_with_metrics(&workload).unwrap();
        for threads in [2, 4, crate::concurrent::default_threads()] {
            let runner = PairRunner::new(scheme.clone(), RsuId(1), RsuId(2)).with_threads(threads);
            let (out, metrics) = runner.run_with_metrics(&workload).unwrap();
            assert_eq!(out.estimate, seq_out.estimate, "threads = {threads}");
            assert_eq!(metrics, seq_metrics, "threads = {threads}");
        }
    }

    #[test]
    fn sharded_ingestion_is_bit_identical_to_monolithic() {
        let scheme = Scheme::variable(2, 3.0, 5).unwrap();
        let workload = SyntheticPair::generate(2_000, 6_000, 400, 31);
        let mono = PairRunner::new(scheme.clone(), RsuId(1), RsuId(2));
        let (mono_out, mono_metrics) = mono.run_with_metrics(&workload).unwrap();
        for shards in [1usize, 2, 4, 8] {
            let runner = PairRunner::new(scheme.clone(), RsuId(1), RsuId(2)).with_shards(shards);
            let (out, metrics) = runner.run_with_metrics(&workload).unwrap();
            assert_eq!(out.estimate, mono_out.estimate, "shards = {shards}");
            assert_eq!(metrics, mono_metrics, "shards = {shards}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let scheme = Scheme::variable(2, 3.0, 5).unwrap();
        let _ = PairRunner::new(scheme, RsuId(1), RsuId(2)).with_shards(0);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let scheme = Scheme::variable(2, 3.0, 5).unwrap();
        let _ = PairRunner::new(scheme, RsuId(1), RsuId(2)).with_threads(0);
    }

    #[test]
    fn observed_run_is_bit_identical_and_bridges_comm_metrics() {
        let scheme = Scheme::variable(2, 3.0, 5).unwrap();
        let workload = SyntheticPair::generate(800, 2_400, 200, 23);
        let plain = PairRunner::new(scheme.clone(), RsuId(1), RsuId(2));
        let (plain_out, plain_metrics) = plain.run_with_metrics(&workload).unwrap();
        let obs = Obs::enabled(vcps_obs::Level::Trace);
        let observed = PairRunner::new(scheme, RsuId(1), RsuId(2)).with_obs(obs.clone());
        let (obs_out, obs_metrics) = observed.run_with_metrics(&workload).unwrap();
        assert_eq!(obs_out.estimate, plain_out.estimate);
        assert_eq!(obs_metrics, plain_metrics);
        let snap = obs.snapshot();
        assert_eq!(snap.counters["comm.reports"], plain_metrics.reports);
        assert_eq!(snap.counters["server.receive.fresh"], 2);
        // One decode happened, under the Decode phase timer.
        assert_eq!(snap.counters["phase.decode.calls"], 1);
        assert_eq!(snap.counters["phase.encode.calls"], 1);
        assert_eq!(snap.counters["phase.receive.calls"], 1);
    }
}
