//! Property tests for the simulator: protocol round-trips, workload
//! structure, and privacy accounting.

use proptest::prelude::*;

use vcps_core::{RsuId, Scheme};
use vcps_sim::adversary::observe_pair;
use vcps_sim::pki::TrustedAuthority;
use vcps_sim::protocol::{BatchUpload, BitReport, PeriodUpload, Query, SequencedUpload};
use vcps_sim::synthetic::SyntheticPair;
use vcps_sim::{MacAddress, SimError};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn query_wire_roundtrip(rsu in any::<u64>(), size in 2u64..1 << 30, ca_seed in any::<u64>()) {
        let ca = TrustedAuthority::new(ca_seed);
        let q = Query {
            rsu: RsuId(rsu),
            certificate: ca.issue(RsuId(rsu)),
            array_size: size,
        };
        prop_assert_eq!(Query::decode(&q.encode()).unwrap(), q);
    }

    #[test]
    fn report_wire_roundtrip(mac in any::<[u8; 6]>(), index in any::<u64>()) {
        let r = BitReport {
            mac: MacAddress(mac),
            index,
        };
        prop_assert_eq!(BitReport::decode(&r.encode()).unwrap(), r);
    }

    #[test]
    fn upload_wire_roundtrip_both_encodings(
        rsu in any::<u64>(), counter in any::<u64>(),
        len in 2usize..4_000,
        ones in prop::collection::vec(any::<u32>(), 0..128),
    ) {
        let bits = vcps_bitarray::BitArray::from_indices(
            len,
            ones.iter().map(|&i| i as usize % len),
        )
        .unwrap();
        let u = PeriodUpload {
            rsu: RsuId(rsu),
            counter,
            bits,
        };
        prop_assert_eq!(&PeriodUpload::decode(&u.encode()).unwrap(), &u);
        prop_assert_eq!(&PeriodUpload::decode(&u.encode_compact()).unwrap(), &u);
        prop_assert!(u.encode_compact().len() <= u.encode().len() + 8);
    }

    #[test]
    fn truncated_frames_never_panic(
        bytes in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        // Fuzz the decoders: arbitrary bytes must be rejected or parsed,
        // never panic.
        let _ = Query::decode(&bytes);
        let _ = BitReport::decode(&bytes);
        let _ = PeriodUpload::decode(&bytes);
    }

    #[test]
    fn mutated_query_frames_are_rejected_or_decode_consistently(
        rsu in any::<u64>(), size in 2u64..1 << 30, ca_seed in any::<u64>(),
        cut in 0usize..33, trailing in 1usize..16,
        flip_pos in any::<usize>(), flip_bit in 0u8..8,
    ) {
        let ca = TrustedAuthority::new(ca_seed);
        let q = Query {
            rsu: RsuId(rsu),
            certificate: ca.issue(RsuId(rsu)),
            array_size: size,
        };
        let wire = q.encode().to_vec();
        // Any strict prefix is rejected.
        prop_assert!(Query::decode(&wire[..cut.min(wire.len() - 1)]).is_err());
        // Trailing bytes are rejected.
        let mut padded = wire.clone();
        padded.extend(std::iter::repeat_n(0xAA, trailing));
        prop_assert!(Query::decode(&padded).is_err());
        // A wrong tag is rejected no matter the payload.
        let mut wrong = wire.clone();
        wrong[0] = wrong[0].wrapping_add(1);
        prop_assert!(Query::decode(&wrong).is_err());
        // A flipped bit never panics; if the frame still parses, it
        // re-encodes to exactly the mutated bytes (no silent
        // canonicalization hiding the corruption).
        let mut flipped = wire.clone();
        flipped[flip_pos % wire.len()] ^= 1 << flip_bit;
        if let Ok(d) = Query::decode(&flipped) {
            prop_assert_eq!(d.encode().to_vec(), flipped);
        }
    }

    #[test]
    fn mutated_report_frames_are_rejected_or_decode_consistently(
        mac in any::<[u8; 6]>(), index in any::<u64>(),
        cut in 0usize..15, trailing in 1usize..16,
        flip_pos in any::<usize>(), flip_bit in 0u8..8,
    ) {
        let r = BitReport { mac: MacAddress(mac), index };
        let wire = r.encode().to_vec();
        prop_assert!(BitReport::decode(&wire[..cut.min(wire.len() - 1)]).is_err());
        let mut padded = wire.clone();
        padded.extend(std::iter::repeat_n(0x55, trailing));
        prop_assert!(BitReport::decode(&padded).is_err());
        let mut wrong = wire.clone();
        wrong[0] = wrong[0].wrapping_add(3);
        prop_assert!(BitReport::decode(&wrong).is_err());
        let mut flipped = wire.clone();
        flipped[flip_pos % wire.len()] ^= 1 << flip_bit;
        if let Ok(d) = BitReport::decode(&flipped) {
            prop_assert_eq!(d.encode().to_vec(), flipped);
        }
    }

    #[test]
    fn mutated_upload_frames_never_panic_or_bogus_accept(
        rsu in any::<u64>(), counter in any::<u64>(),
        len in 2usize..4_000,
        ones in prop::collection::vec(any::<u32>(), 0..64),
        cut_frac in 0.0f64..1.0, trailing in 1usize..32,
        flip_pos in any::<usize>(), flip_bit in 0u8..8,
        compact in any::<bool>(),
    ) {
        let bits = vcps_bitarray::BitArray::from_indices(
            len,
            ones.iter().map(|&i| i as usize % len),
        )
        .unwrap();
        let u = PeriodUpload { rsu: RsuId(rsu), counter, bits };
        let wire = if compact {
            u.encode_compact().to_vec()
        } else {
            u.encode().to_vec()
        };
        // Any strict prefix is rejected.
        let cut = ((wire.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(PeriodUpload::decode(&wire[..cut]).is_err());
        // Trailing bytes are rejected (both frame kinds check exact
        // payload length).
        let mut padded = wire.clone();
        padded.extend(std::iter::repeat_n(0xAA, trailing));
        prop_assert!(PeriodUpload::decode(&padded).is_err());
        // A wrong tag is rejected.
        let mut wrong = wire.clone();
        wrong[0] ^= 0x80;
        prop_assert!(PeriodUpload::decode(&wrong).is_err());
        // A flipped bit never panics; anything that still parses must
        // round-trip through its own encoding.
        let mut flipped = wire.clone();
        flipped[flip_pos % wire.len()] ^= 1 << flip_bit;
        if let Ok(d) = PeriodUpload::decode(&flipped) {
            prop_assert_eq!(&PeriodUpload::decode(&d.encode()).unwrap(), &d);
        }
    }

    #[test]
    fn mutated_sequenced_upload_frames_never_panic(
        seq in any::<u64>(), rsu in any::<u64>(), counter in any::<u64>(),
        len in 2usize..2_000,
        cut_frac in 0.0f64..1.0, trailing in 1usize..32,
        flip_pos in any::<usize>(), flip_bit in 0u8..8,
    ) {
        let su = SequencedUpload {
            seq,
            upload: PeriodUpload {
                rsu: RsuId(rsu),
                counter,
                bits: vcps_bitarray::BitArray::new(len),
            },
        };
        let wire = su.encode().to_vec();
        prop_assert_eq!(&SequencedUpload::decode(&wire).unwrap(), &su);
        let cut = ((wire.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(SequencedUpload::decode(&wire[..cut]).is_err());
        let mut padded = wire.clone();
        padded.extend(std::iter::repeat_n(0xAA, trailing));
        prop_assert!(SequencedUpload::decode(&padded).is_err());
        let mut wrong = wire.clone();
        wrong[0] ^= 0x80;
        prop_assert!(SequencedUpload::decode(&wrong).is_err());
        let mut flipped = wire.clone();
        flipped[flip_pos % wire.len()] ^= 1 << flip_bit;
        if let Ok(d) = SequencedUpload::decode(&flipped) {
            prop_assert_eq!(&SequencedUpload::decode(&d.encode()).unwrap(), &d);
        }
    }

    #[test]
    fn synthetic_pair_structure(
        n_x in 1u64..2_000, extra_y in 0u64..2_000, n_c_frac in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let n_y = n_x + extra_y;
        let n_c = (n_c_frac * n_x.min(n_y) as f64) as u64;
        let w = SyntheticPair::generate(n_x, n_y, n_c, seed);
        prop_assert_eq!(w.n_x(), n_x);
        prop_assert_eq!(w.n_y(), n_y);
        prop_assert_eq!(w.n_c(), n_c);
    }

    #[test]
    fn adversary_counts_are_consistent(
        n_x in 50u64..800, skew in 1u64..10, seed in any::<u64>(),
    ) {
        let n_y = n_x * skew;
        let n_c = n_x / 5;
        let scheme = Scheme::variable(2, 3.0, seed).unwrap();
        let w = SyntheticPair::generate(n_x, n_y, n_c, seed);
        let obs = observe_pair(&scheme, &w, RsuId(1), RsuId(2)).unwrap();
        prop_assert!(obs.untraceable <= obs.both_set);
        if let Some(p) = obs.empirical_privacy() {
            prop_assert!((0.0..=1.0).contains(&p));
        }
        // With zero common vehicles every both-set position is untraceable.
        let disjoint = SyntheticPair::generate(n_x, n_y, 0, seed);
        let obs0 = observe_pair(&scheme, &disjoint, RsuId(1), RsuId(2)).unwrap();
        prop_assert_eq!(obs0.untraceable, obs0.both_set);
    }
}

/// Mirror of the wire checksum (`protocol::fnv1a_64`), used to splice
/// batch records with *valid* checksums so the splice tests exercise the
/// ordering invariant rather than tripping the checksum guard first.
fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Assembles a raw batch wire frame from pre-encoded inner records,
/// declaring `count` frames regardless of how many records follow.
fn splice_batch_wire(records: &[Vec<u8>], count: u64) -> Vec<u8> {
    let mut wire = vec![6u8]; // TAG_BATCH
    wire.extend_from_slice(&count.to_be_bytes());
    for record in records {
        wire.extend_from_slice(&(record.len() as u64).to_be_bytes());
        wire.extend_from_slice(&fnv1a_64(record).to_be_bytes());
        wire.extend_from_slice(record);
    }
    wire
}

fn malformed_reason(err: &SimError) -> &'static str {
    match err {
        SimError::MalformedMessage { reason } => reason,
        other => panic!("expected MalformedMessage, got {other:?}"),
    }
}

/// Builds a batch with strictly increasing `(rsu, seq)` keys from the
/// proptest spec: per-frame `(rsu gap, seq, counter, 2^k length, ones)`.
fn batch_from_specs(specs: &[(u64, u64, u64, u32, Vec<u32>)]) -> BatchUpload {
    let mut rsu = 0u64;
    let frames = specs
        .iter()
        .map(|(gap, seq, counter, k, ones)| {
            rsu += gap;
            let len = 1usize << k;
            SequencedUpload {
                seq: *seq,
                upload: PeriodUpload {
                    rsu: RsuId(rsu),
                    counter: *counter,
                    bits: vcps_bitarray::BitArray::from_indices(
                        len,
                        ones.iter().map(|&v| v as usize % len),
                    )
                    .unwrap(),
                },
            }
        })
        .collect();
    BatchUpload::new(frames).expect("keys are strictly increasing by construction")
}

// Decoder-mutation properties for the batch frame (tag 6): a corrupted,
// truncated, reordered, or duplicated batch must surface as a typed
// `SimError::MalformedMessage` — never a panic, never a silent accept of
// content that differs from what a healthy sender produced.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn batch_wire_roundtrip(
        specs in prop::collection::vec(
            (1u64..40, any::<u64>(), any::<u64>(), 1u32..9,
             prop::collection::vec(any::<u32>(), 0..24)),
            0..12,
        ),
    ) {
        let batch = batch_from_specs(&specs);
        let decoded = BatchUpload::decode(&batch.encode()).unwrap();
        prop_assert_eq!(&decoded, &batch);
        // Canonical order survives the trip: keys strictly increase.
        let keys: Vec<_> = decoded.frames().iter().map(|f| (f.upload.rsu, f.seq)).collect();
        prop_assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn mutated_batch_frames_never_panic_or_bogus_accept(
        specs in prop::collection::vec(
            (1u64..40, any::<u64>(), any::<u64>(), 1u32..8,
             prop::collection::vec(any::<u32>(), 0..16)),
            1..8,
        ),
        cut_frac in 0.0f64..1.0, trailing in 1usize..32,
        flip_pos in any::<usize>(), flip_bit in 0u8..8,
    ) {
        let batch = batch_from_specs(&specs);
        let wire = batch.encode().to_vec();

        // Any strict prefix is rejected.
        let cut = ((wire.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(BatchUpload::decode(&wire[..cut]).is_err());

        // Trailing bytes are rejected by name.
        let mut padded = wire.clone();
        padded.extend(std::iter::repeat_n(0xAA, trailing));
        let err = BatchUpload::decode(&padded).unwrap_err();
        prop_assert_eq!(malformed_reason(&err), "trailing bytes after batch");

        // A wrong tag is rejected outright.
        let mut wrong = wire.clone();
        wrong[0] ^= 0x80;
        prop_assert!(BatchUpload::decode(&wrong).is_err());

        // A flipped bit never panics; if the frame somehow still parses
        // it must round-trip through its own canonical encoding.
        let mut flipped = wire.clone();
        let pos = flip_pos % wire.len();
        flipped[pos] ^= 1 << flip_bit;
        match BatchUpload::decode(&flipped) {
            Ok(d) => prop_assert_eq!(BatchUpload::decode(&d.encode()).unwrap(), d),
            Err(SimError::MalformedMessage { .. }) => {}
            Err(other) => prop_assert!(false, "untyped decode error: {other:?}"),
        }

        // A flip inside a record's payload (past its 16-byte header) is
        // *always* caught: that is exactly what the per-record checksum
        // buys over the plain concatenated encoding.
        let mut offset = 9usize; // tag + count header
        for frame in batch.frames() {
            let len = frame.encode().len();
            let payload = offset + 16..offset + 16 + len;
            if payload.contains(&pos) {
                let err = BatchUpload::decode(&flipped).unwrap_err();
                prop_assert_eq!(
                    malformed_reason(&err),
                    "batch record checksum mismatch"
                );
            }
            offset = payload.end;
        }
    }

    #[test]
    fn reordered_or_duplicated_batch_records_are_rejected(
        specs in prop::collection::vec(
            (1u64..40, any::<u64>(), any::<u64>(), 1u32..8,
             prop::collection::vec(any::<u32>(), 0..16)),
            2..8,
        ),
        swap_a in any::<usize>(),
        swap_b in any::<usize>(),
        dup in any::<usize>(),
    ) {
        let batch = batch_from_specs(&specs);
        let records: Vec<Vec<u8>> =
            batch.frames().iter().map(|f| f.encode().to_vec()).collect();
        let count = records.len() as u64;

        // The spliced wire with untouched records decodes to the batch —
        // the splicer is faithful, so rejections below are real.
        let control = splice_batch_wire(&records, count);
        prop_assert_eq!(BatchUpload::decode(&control).unwrap(), batch.clone());

        // Swapping two records keeps every checksum valid but breaks the
        // strictly-increasing key order.
        let (i, j) = (swap_a % records.len(), swap_b % records.len());
        if i != j {
            let mut swapped = records.clone();
            swapped.swap(i, j);
            let err = BatchUpload::decode(&splice_batch_wire(&swapped, count)).unwrap_err();
            prop_assert_eq!(
                malformed_reason(&err),
                "batch records not strictly increasing"
            );
        }

        // Replaying a record (a re-sent shard bucket, say) is rejected
        // for the same reason: its key is not greater than its twin's.
        let mut doubled = records.clone();
        let d = dup % records.len();
        doubled.insert(d, records[d].clone());
        let err = BatchUpload::decode(&splice_batch_wire(&doubled, count + 1)).unwrap_err();
        prop_assert_eq!(
            malformed_reason(&err),
            "batch records not strictly increasing"
        );

        // A count header that disagrees with the records present fails
        // on the side it errs: short count leaves trailing bytes, long
        // count runs out of record headers.
        let err = BatchUpload::decode(&splice_batch_wire(&records, count - 1)).unwrap_err();
        prop_assert_eq!(malformed_reason(&err), "trailing bytes after batch");
        let err = BatchUpload::decode(&splice_batch_wire(&records, count + 1)).unwrap_err();
        prop_assert_eq!(malformed_reason(&err), "truncated batch record header");

        // The constructor enforces the same invariant the decoder does:
        // handing it a duplicated frame is a typed error, not a panic.
        let mut frames = batch.frames().to_vec();
        frames.push(frames[dup % frames.len()].clone());
        let err = BatchUpload::new(frames).unwrap_err();
        prop_assert_eq!(malformed_reason(&err), "duplicate (rsu, seq) in batch");
    }
}

// The batch O–D matrix decoder must be indistinguishable from the
// pairwise estimate loop: same entries (up to the documented transpose
// of degraded labels), at every thread count, for any mix of uploaded
// and history-only RSUs.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn od_matrix_matches_pairwise_loop_at_every_thread_count(
        specs in prop::collection::vec(
            (
                1u32..9,                                    // len = 2^k
                prop::collection::vec(any::<u32>(), 0..48), // reported indices
                1u64..5_000,                                // period counter
                any::<bool>(),                              // history-only RSU?
            ),
            2..8,
        ),
        seed in any::<u64>(),
    ) {
        use vcps_sim::CentralServer;

        let scheme = Scheme::variable(2, 3.0, seed).unwrap();
        let mut server = CentralServer::new(scheme, 0.5).unwrap();
        for (i, (k, ones, counter, history_only)) in specs.iter().enumerate() {
            let rsu = RsuId(i as u64);
            if *history_only {
                server.seed_history(rsu, *counter as f64);
            } else {
                let len = 1usize << k;
                let bits = vcps_bitarray::BitArray::from_indices(
                    len,
                    ones.iter().map(|&v| v as usize % len),
                )
                .unwrap();
                server.receive(PeriodUpload { rsu, counter: *counter, bits });
            }
        }

        for threads in [1usize, 2, 4, 8] {
            let matrix = server.od_matrix_threads(threads).unwrap();
            prop_assert_eq!(matrix.len(), specs.len());
            let rsus = matrix.rsus().to_vec();
            for (i, &a) in rsus.iter().enumerate() {
                for (j, &b) in rsus.iter().enumerate() {
                    if i == j {
                        prop_assert!(matrix.at(i, j).is_none());
                        continue;
                    }
                    let pairwise = server.estimate_or_degraded(a, b).unwrap();
                    prop_assert_eq!(matrix.at(i, j), Some(&pairwise));
                    prop_assert_eq!(matrix.get(a, b), Some(&pairwise));
                }
            }
        }
    }
}

// The persistent-pool work distribution must be invisible: any routine
// built on it returns exactly what its sequential form returns, at
// every thread count, regardless of how the chunk claimer slices the
// input across workers.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn parallel_map_preserves_order_and_values_at_every_thread_count(
        items in prop::collection::vec(any::<u64>(), 0..300),
    ) {
        // Mixing function with full avalanche, so a single swapped or
        // duplicated element anywhere in the output cannot cancel out.
        let f = |&v: &u64| v.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31) ^ v;
        let sequential: Vec<u64> = items.iter().map(f).collect();
        for threads in [1usize, 2, 4, 8] {
            let parallel = vcps_sim::concurrent::parallel_map_threads(items.clone(), threads, f);
            prop_assert_eq!(&parallel, &sequential, "threads = {}", threads);
        }
    }

    #[test]
    fn receive_parallel_threads_matches_sequential_ingestion(
        specs in prop::collection::vec(
            (
                1u64..64,            // RSU id
                0u64..4,             // sequence number
                2u32..9,             // len = 2^k
                prop::collection::vec(any::<u32>(), 0..24),
                1u64..5_000,         // period counter
            ),
            0..24,
        ),
        shards in 1usize..6,
        seed in any::<u64>(),
    ) {
        use vcps_sim::ShardedServer;

        let batch: Vec<SequencedUpload> = specs
            .iter()
            .map(|(rsu, seq, k, ones, counter)| {
                let len = 1usize << k;
                let bits = vcps_bitarray::BitArray::from_indices(
                    len,
                    ones.iter().map(|&v| v as usize % len),
                )
                .unwrap();
                SequencedUpload {
                    seq: *seq,
                    upload: PeriodUpload { rsu: RsuId(*rsu), counter: *counter, bits },
                }
            })
            .collect();

        let scheme = Scheme::variable(2, 3.0, seed).unwrap();
        let mut reference = ShardedServer::new(scheme.clone(), 0.5, shards).unwrap();
        let expected: Vec<_> = batch
            .iter()
            .map(|frame| reference.receive_sequenced(frame.clone()))
            .collect();

        for threads in [1usize, 2, 4, 8] {
            let mut server = ShardedServer::new(scheme.clone(), 0.5, shards).unwrap();
            let outcomes = server.receive_parallel_threads(batch.clone(), threads);
            // Same per-frame outcomes in input order, and same final
            // per-RSU state (the dedup winner is order-defined within
            // an RSU, and the parallel form never reorders within one).
            prop_assert_eq!(&outcomes, &expected, "threads = {}", threads);
            prop_assert_eq!(server.upload_count(), reference.upload_count());
            for (rsu, ..) in &specs {
                prop_assert_eq!(
                    server.upload(RsuId(*rsu)),
                    reference.upload(RsuId(*rsu)),
                    "rsu {} at {} threads", rsu, threads
                );
            }
        }
    }
}
