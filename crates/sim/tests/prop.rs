//! Property tests for the simulator: protocol round-trips, workload
//! structure, and privacy accounting.

use proptest::prelude::*;

use vcps_core::{RsuId, Scheme};
use vcps_sim::adversary::observe_pair;
use vcps_sim::pki::TrustedAuthority;
use vcps_sim::protocol::{BitReport, PeriodUpload, Query, SequencedUpload};
use vcps_sim::synthetic::SyntheticPair;
use vcps_sim::MacAddress;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn query_wire_roundtrip(rsu in any::<u64>(), size in 2u64..1 << 30, ca_seed in any::<u64>()) {
        let ca = TrustedAuthority::new(ca_seed);
        let q = Query {
            rsu: RsuId(rsu),
            certificate: ca.issue(RsuId(rsu)),
            array_size: size,
        };
        prop_assert_eq!(Query::decode(&q.encode()).unwrap(), q);
    }

    #[test]
    fn report_wire_roundtrip(mac in any::<[u8; 6]>(), index in any::<u64>()) {
        let r = BitReport {
            mac: MacAddress(mac),
            index,
        };
        prop_assert_eq!(BitReport::decode(&r.encode()).unwrap(), r);
    }

    #[test]
    fn upload_wire_roundtrip_both_encodings(
        rsu in any::<u64>(), counter in any::<u64>(),
        len in 2usize..4_000,
        ones in prop::collection::vec(any::<u32>(), 0..128),
    ) {
        let bits = vcps_bitarray::BitArray::from_indices(
            len,
            ones.iter().map(|&i| i as usize % len),
        )
        .unwrap();
        let u = PeriodUpload {
            rsu: RsuId(rsu),
            counter,
            bits,
        };
        prop_assert_eq!(&PeriodUpload::decode(&u.encode()).unwrap(), &u);
        prop_assert_eq!(&PeriodUpload::decode(&u.encode_compact()).unwrap(), &u);
        prop_assert!(u.encode_compact().len() <= u.encode().len() + 8);
    }

    #[test]
    fn truncated_frames_never_panic(
        bytes in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        // Fuzz the decoders: arbitrary bytes must be rejected or parsed,
        // never panic.
        let _ = Query::decode(&bytes);
        let _ = BitReport::decode(&bytes);
        let _ = PeriodUpload::decode(&bytes);
    }

    #[test]
    fn mutated_query_frames_are_rejected_or_decode_consistently(
        rsu in any::<u64>(), size in 2u64..1 << 30, ca_seed in any::<u64>(),
        cut in 0usize..33, trailing in 1usize..16,
        flip_pos in any::<usize>(), flip_bit in 0u8..8,
    ) {
        let ca = TrustedAuthority::new(ca_seed);
        let q = Query {
            rsu: RsuId(rsu),
            certificate: ca.issue(RsuId(rsu)),
            array_size: size,
        };
        let wire = q.encode().to_vec();
        // Any strict prefix is rejected.
        prop_assert!(Query::decode(&wire[..cut.min(wire.len() - 1)]).is_err());
        // Trailing bytes are rejected.
        let mut padded = wire.clone();
        padded.extend(std::iter::repeat_n(0xAA, trailing));
        prop_assert!(Query::decode(&padded).is_err());
        // A wrong tag is rejected no matter the payload.
        let mut wrong = wire.clone();
        wrong[0] = wrong[0].wrapping_add(1);
        prop_assert!(Query::decode(&wrong).is_err());
        // A flipped bit never panics; if the frame still parses, it
        // re-encodes to exactly the mutated bytes (no silent
        // canonicalization hiding the corruption).
        let mut flipped = wire.clone();
        flipped[flip_pos % wire.len()] ^= 1 << flip_bit;
        if let Ok(d) = Query::decode(&flipped) {
            prop_assert_eq!(d.encode().to_vec(), flipped);
        }
    }

    #[test]
    fn mutated_report_frames_are_rejected_or_decode_consistently(
        mac in any::<[u8; 6]>(), index in any::<u64>(),
        cut in 0usize..15, trailing in 1usize..16,
        flip_pos in any::<usize>(), flip_bit in 0u8..8,
    ) {
        let r = BitReport { mac: MacAddress(mac), index };
        let wire = r.encode().to_vec();
        prop_assert!(BitReport::decode(&wire[..cut.min(wire.len() - 1)]).is_err());
        let mut padded = wire.clone();
        padded.extend(std::iter::repeat_n(0x55, trailing));
        prop_assert!(BitReport::decode(&padded).is_err());
        let mut wrong = wire.clone();
        wrong[0] = wrong[0].wrapping_add(3);
        prop_assert!(BitReport::decode(&wrong).is_err());
        let mut flipped = wire.clone();
        flipped[flip_pos % wire.len()] ^= 1 << flip_bit;
        if let Ok(d) = BitReport::decode(&flipped) {
            prop_assert_eq!(d.encode().to_vec(), flipped);
        }
    }

    #[test]
    fn mutated_upload_frames_never_panic_or_bogus_accept(
        rsu in any::<u64>(), counter in any::<u64>(),
        len in 2usize..4_000,
        ones in prop::collection::vec(any::<u32>(), 0..64),
        cut_frac in 0.0f64..1.0, trailing in 1usize..32,
        flip_pos in any::<usize>(), flip_bit in 0u8..8,
        compact in any::<bool>(),
    ) {
        let bits = vcps_bitarray::BitArray::from_indices(
            len,
            ones.iter().map(|&i| i as usize % len),
        )
        .unwrap();
        let u = PeriodUpload { rsu: RsuId(rsu), counter, bits };
        let wire = if compact {
            u.encode_compact().to_vec()
        } else {
            u.encode().to_vec()
        };
        // Any strict prefix is rejected.
        let cut = ((wire.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(PeriodUpload::decode(&wire[..cut]).is_err());
        // Trailing bytes are rejected (both frame kinds check exact
        // payload length).
        let mut padded = wire.clone();
        padded.extend(std::iter::repeat_n(0xAA, trailing));
        prop_assert!(PeriodUpload::decode(&padded).is_err());
        // A wrong tag is rejected.
        let mut wrong = wire.clone();
        wrong[0] ^= 0x80;
        prop_assert!(PeriodUpload::decode(&wrong).is_err());
        // A flipped bit never panics; anything that still parses must
        // round-trip through its own encoding.
        let mut flipped = wire.clone();
        flipped[flip_pos % wire.len()] ^= 1 << flip_bit;
        if let Ok(d) = PeriodUpload::decode(&flipped) {
            prop_assert_eq!(&PeriodUpload::decode(&d.encode()).unwrap(), &d);
        }
    }

    #[test]
    fn mutated_sequenced_upload_frames_never_panic(
        seq in any::<u64>(), rsu in any::<u64>(), counter in any::<u64>(),
        len in 2usize..2_000,
        cut_frac in 0.0f64..1.0, trailing in 1usize..32,
        flip_pos in any::<usize>(), flip_bit in 0u8..8,
    ) {
        let su = SequencedUpload {
            seq,
            upload: PeriodUpload {
                rsu: RsuId(rsu),
                counter,
                bits: vcps_bitarray::BitArray::new(len),
            },
        };
        let wire = su.encode().to_vec();
        prop_assert_eq!(&SequencedUpload::decode(&wire).unwrap(), &su);
        let cut = ((wire.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(SequencedUpload::decode(&wire[..cut]).is_err());
        let mut padded = wire.clone();
        padded.extend(std::iter::repeat_n(0xAA, trailing));
        prop_assert!(SequencedUpload::decode(&padded).is_err());
        let mut wrong = wire.clone();
        wrong[0] ^= 0x80;
        prop_assert!(SequencedUpload::decode(&wrong).is_err());
        let mut flipped = wire.clone();
        flipped[flip_pos % wire.len()] ^= 1 << flip_bit;
        if let Ok(d) = SequencedUpload::decode(&flipped) {
            prop_assert_eq!(&SequencedUpload::decode(&d.encode()).unwrap(), &d);
        }
    }

    #[test]
    fn synthetic_pair_structure(
        n_x in 1u64..2_000, extra_y in 0u64..2_000, n_c_frac in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let n_y = n_x + extra_y;
        let n_c = (n_c_frac * n_x.min(n_y) as f64) as u64;
        let w = SyntheticPair::generate(n_x, n_y, n_c, seed);
        prop_assert_eq!(w.n_x(), n_x);
        prop_assert_eq!(w.n_y(), n_y);
        prop_assert_eq!(w.n_c(), n_c);
    }

    #[test]
    fn adversary_counts_are_consistent(
        n_x in 50u64..800, skew in 1u64..10, seed in any::<u64>(),
    ) {
        let n_y = n_x * skew;
        let n_c = n_x / 5;
        let scheme = Scheme::variable(2, 3.0, seed).unwrap();
        let w = SyntheticPair::generate(n_x, n_y, n_c, seed);
        let obs = observe_pair(&scheme, &w, RsuId(1), RsuId(2)).unwrap();
        prop_assert!(obs.untraceable <= obs.both_set);
        if let Some(p) = obs.empirical_privacy() {
            prop_assert!((0.0..=1.0).contains(&p));
        }
        // With zero common vehicles every both-set position is untraceable.
        let disjoint = SyntheticPair::generate(n_x, n_y, 0, seed);
        let obs0 = observe_pair(&scheme, &disjoint, RsuId(1), RsuId(2)).unwrap();
        prop_assert_eq!(obs0.untraceable, obs0.both_set);
    }
}

// The batch O–D matrix decoder must be indistinguishable from the
// pairwise estimate loop: same entries (up to the documented transpose
// of degraded labels), at every thread count, for any mix of uploaded
// and history-only RSUs.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn od_matrix_matches_pairwise_loop_at_every_thread_count(
        specs in prop::collection::vec(
            (
                1u32..9,                                    // len = 2^k
                prop::collection::vec(any::<u32>(), 0..48), // reported indices
                1u64..5_000,                                // period counter
                any::<bool>(),                              // history-only RSU?
            ),
            2..8,
        ),
        seed in any::<u64>(),
    ) {
        use vcps_sim::CentralServer;

        let scheme = Scheme::variable(2, 3.0, seed).unwrap();
        let mut server = CentralServer::new(scheme, 0.5).unwrap();
        for (i, (k, ones, counter, history_only)) in specs.iter().enumerate() {
            let rsu = RsuId(i as u64);
            if *history_only {
                server.seed_history(rsu, *counter as f64);
            } else {
                let len = 1usize << k;
                let bits = vcps_bitarray::BitArray::from_indices(
                    len,
                    ones.iter().map(|&v| v as usize % len),
                )
                .unwrap();
                server.receive(PeriodUpload { rsu, counter: *counter, bits });
            }
        }

        for threads in [1usize, 2, 4] {
            let matrix = server.od_matrix_threads(threads).unwrap();
            prop_assert_eq!(matrix.len(), specs.len());
            let rsus = matrix.rsus().to_vec();
            for (i, &a) in rsus.iter().enumerate() {
                for (j, &b) in rsus.iter().enumerate() {
                    if i == j {
                        prop_assert!(matrix.at(i, j).is_none());
                        continue;
                    }
                    let pairwise = server.estimate_or_degraded(a, b).unwrap();
                    prop_assert_eq!(matrix.at(i, j), Some(&pairwise));
                    prop_assert_eq!(matrix.get(a, b), Some(&pairwise));
                }
            }
        }
    }
}
