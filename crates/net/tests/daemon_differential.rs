//! Loopback differential tests: everything the daemon answers must be
//! bit-identical to the in-process `ShardedServer` fed the same wire
//! bytes — the network layer is transport, never arithmetic.

use std::path::PathBuf;

use vcps_core::{RsuId, Scheme};
use vcps_net::wire::estimate_bits;
use vcps_net::workload::{city_replay_frames, reference_order};
use vcps_net::{ConnectionLimits, Daemon, DaemonConfig, NetClient, WireMatrix};
use vcps_obs::Obs;
use vcps_sim::synthetic::SyntheticCity;
use vcps_sim::{DurableOptions, DurableServer, FlushPolicy, OdMatrix, ShardedServer};

fn scheme() -> Scheme {
    Scheme::variable(2, 3.0, 41).unwrap()
}

fn city() -> SyntheticCity {
    SyntheticCity::generate(&[0.3, 0.5, 0.2, 0.4, 0.6, 0.1], 3_000, 17)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vcps-net-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn assert_matrix_bit_identical(wire: &WireMatrix, local: &OdMatrix) {
    let local_rsus: Vec<u64> = local.rsus().iter().map(|r| r.0).collect();
    assert_eq!(wire.rsus, local_rsus, "RSU sets diverged");
    let n = local_rsus.len();
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            match (wire.at(i, j), local.at(i, j)) {
                (Some(remote), Some(expected)) => assert_eq!(
                    estimate_bits(&remote),
                    estimate_bits(expected),
                    "pair ({i}, {j}) diverged"
                ),
                (None, None) => {}
                (remote, expected) => {
                    panic!("pair ({i}, {j}): remote {remote:?} vs local {expected:?}")
                }
            }
        }
    }
}

/// Replays the same frames into an in-process reference server.
fn reference_server(frames_by_connection: &[Vec<Vec<u8>>], shards: usize) -> ShardedServer {
    let mut reference = ShardedServer::new(scheme(), 1.0, shards).unwrap();
    for frame in reference_order(frames_by_connection) {
        reference.receive_batch_wire(frame).unwrap();
    }
    reference
}

/// Replays each stream over its own connection (concurrently when there
/// is more than one) and returns the total upload count acked.
fn replay(addr: std::net::SocketAddr, frames_by_connection: Vec<Vec<Vec<u8>>>) -> u64 {
    let handles: Vec<_> = frames_by_connection
        .into_iter()
        .map(|stream| {
            std::thread::spawn(move || {
                let mut client = NetClient::connect(addr).expect("connect");
                client.ingest_pipelined(&stream).expect("replay").frames
            })
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("replayer"))
        .sum()
}

#[test]
fn loopback_replay_is_bit_identical_to_in_process() {
    for connections in [1usize, 2, 4] {
        let frames = city_replay_frames(&scheme(), &city(), 2, connections);
        let reference = reference_server(&frames, 4);

        let config = DaemonConfig::new(scheme());
        let daemon = Daemon::bind("127.0.0.1:0", config).unwrap();
        let addr = daemon.local_addr();
        let handle = daemon.spawn();

        let acked = replay(addr, frames);
        assert_eq!(acked, 6 * 2, "6 RSUs x 2 periods regardless of fan-in");

        let mut client = NetClient::connect(addr).unwrap();
        let remote_matrix = client.od_query(2).unwrap();
        let local_matrix = reference.od_matrix_threads(2).unwrap();
        assert_matrix_bit_identical(&remote_matrix, &local_matrix);

        let remote_pair = client.pair_query(1, 2).unwrap();
        let local_pair = reference.estimate_or_degraded(RsuId(1), RsuId(2)).unwrap();
        assert_eq!(estimate_bits(&remote_pair), estimate_bits(&local_pair));

        client.shutdown().unwrap();
        handle.join().unwrap();
    }
}

#[test]
fn owned_and_borrowed_ingest_paths_agree() {
    let frames = city_replay_frames(&scheme(), &city(), 1, 2);
    let mut matrices = Vec::new();
    for owned in [false, true] {
        let mut config = DaemonConfig::new(scheme());
        config.owned_ingest = owned;
        let daemon = Daemon::bind("127.0.0.1:0", config).unwrap();
        let addr = daemon.local_addr();
        let handle = daemon.spawn();
        replay(addr, frames.clone());
        let mut client = NetClient::connect(addr).unwrap();
        matrices.push(client.od_query(1).unwrap());
        client.shutdown().unwrap();
        handle.join().unwrap();
    }
    let n = matrices[0].rsus.len();
    for i in 0..n {
        for j in 0..n {
            if i != j {
                let a = matrices[0].at(i, j).expect("pair decoded");
                let b = matrices[1].at(i, j).expect("pair decoded");
                assert_eq!(estimate_bits(&a), estimate_bits(&b), "pair ({i}, {j})");
            }
        }
    }
}

#[test]
fn finish_period_matches_in_process_sizes() {
    let frames = city_replay_frames(&scheme(), &city(), 1, 1);
    let mut reference = reference_server(&frames, 4);

    let daemon = Daemon::bind("127.0.0.1:0", DaemonConfig::new(scheme())).unwrap();
    let addr = daemon.local_addr();
    let handle = daemon.spawn();
    replay(addr, frames);

    let mut client = NetClient::connect(addr).unwrap();
    let remote_sizes = client.finish_period().unwrap();
    let local_sizes: Vec<(u64, u64)> = reference
        .finish_period()
        .unwrap()
        .into_iter()
        .map(|(rsu, m)| (rsu.0, m as u64))
        .collect();
    assert_eq!(remote_sizes, local_sizes);

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn durable_daemon_flushes_on_shutdown_and_recovers() {
    let dir = temp_dir("durable");
    let frames = city_replay_frames(&scheme(), &city(), 2, 2);
    let reference = reference_server(&frames, 4);
    let frames_sent: usize = frames.iter().map(Vec::len).sum();

    let obs = Obs::enabled(vcps_obs::Level::Info);
    let mut config = DaemonConfig::new(scheme());
    config.wal_dir = Some(dir.clone());
    // Manual flushing: nothing reaches disk until the shutdown path
    // flushes explicitly — the exact behavior under test.
    config.durable_options = DurableOptions::log_only().with_flush(FlushPolicy::Manual);
    config.obs = obs.clone();
    let daemon = Daemon::bind("127.0.0.1:0", config).unwrap();
    let addr = daemon.local_addr();
    let handle = daemon.spawn();

    replay(addr, frames);
    let mut client = NetClient::connect(addr).unwrap();
    client.shutdown().unwrap();
    handle.join().unwrap();

    // The orderly shutdown flushed, so nothing was dropped...
    let snap = obs.snapshot();
    assert!(
        !snap.counters.contains_key("wal.dropped_buffered_records"),
        "shutdown must flush the WAL, not drop it"
    );

    // ...and a fresh process recovers the exact state the daemon held.
    let (recovered, report) = DurableServer::recover(
        scheme(),
        1.0,
        4,
        &dir,
        DurableOptions::log_only(),
        &Obs::disabled(),
    )
    .unwrap();
    assert_eq!(report.tail_error, None);
    assert_eq!(
        report.checkpoint_records + report.replayed_records,
        frames_sent as u64
    );
    assert_eq!(
        recovered.server().checkpoint(0),
        reference.checkpoint(0),
        "recovered state must be bit-identical to the in-process reference"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn connection_budget_rejects_excess_connections() {
    let mut config = DaemonConfig::new(scheme());
    config.limits = ConnectionLimits {
        max_connections: 1,
        ..ConnectionLimits::default()
    };
    let daemon = Daemon::bind("127.0.0.1:0", config).unwrap();
    let addr = daemon.local_addr();
    let handle = daemon.spawn();

    let mut first = NetClient::connect(addr).unwrap();
    first.ping().unwrap();
    // The budget is enforced at accept time; the second connection gets
    // an error frame and a close.
    let mut second = NetClient::connect(addr).unwrap();
    match second.ping() {
        Err(_) => {}
        Ok(()) => panic!("second connection must be rejected"),
    }
    first.shutdown().unwrap();
    handle.join().unwrap();
}
