//! Hostile-stream suite for the daemon's framing layer: every
//! malformed, truncated, or stalled input must produce a typed error
//! and a clean teardown — never a panic, never an allocation sized by
//! the attacker, and never a wedged daemon.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use vcps_core::Scheme;
use vcps_net::wire::{read_frame, Response};
use vcps_net::{ConnectionLimits, Daemon, DaemonConfig, DaemonHandle, NetClient};
use vcps_sim::{PeriodUpload, SequencedUpload};

fn scheme() -> Scheme {
    Scheme::variable(2, 3.0, 23).unwrap()
}

fn spawn_daemon(limits: ConnectionLimits) -> (SocketAddr, DaemonHandle) {
    let mut config = DaemonConfig::new(scheme());
    config.limits = limits;
    let daemon = Daemon::bind("127.0.0.1:0", config).unwrap();
    let addr = daemon.local_addr();
    (addr, daemon.spawn())
}

fn tight_limits() -> ConnectionLimits {
    ConnectionLimits {
        max_frame_bytes: 1 << 16,
        read_timeout: Duration::from_millis(300),
        ..ConnectionLimits::default()
    }
}

fn shutdown(addr: SocketAddr, handle: DaemonHandle) {
    let mut client = NetClient::connect(addr).unwrap();
    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// The daemon must still serve fresh connections — the liveness probe
/// every scenario ends with.
fn assert_alive(addr: SocketAddr) {
    let mut client = NetClient::connect(addr).unwrap();
    client.ping().expect("daemon must survive a hostile peer");
}

fn upload_frame(rsu: u64, seq: u64) -> Vec<u8> {
    let bits = vcps_core::BitArray::from_indices(256, [3usize, 77, 130]).unwrap();
    SequencedUpload {
        seq,
        upload: PeriodUpload {
            rsu: vcps_core::RsuId(rsu),
            counter: 3,
            bits,
        },
    }
    .encode()
    .to_vec()
}

#[test]
fn oversized_length_prefix_is_refused_before_allocation() {
    let (addr, handle) = spawn_daemon(tight_limits());
    let mut raw = TcpStream::connect(addr).unwrap();
    // Claim 4 GiB - 1. If the daemon allocated what the prefix claims,
    // this test would OOM the suite; instead it must answer with an
    // error frame and close.
    raw.write_all(&u32::MAX.to_be_bytes()).unwrap();
    let response = read_frame(&mut raw, 1 << 20).unwrap();
    match Response::decode(&response).unwrap() {
        Response::Error(msg) => assert!(msg.contains("exceeds"), "unexpected reason: {msg}"),
        other => panic!("expected error frame, got {other:?}"),
    }
    // The connection is closed after a framing error.
    let mut buf = [0u8; 1];
    assert_eq!(raw.read(&mut buf).unwrap_or(0), 0, "connection must close");
    assert_alive(addr);
    shutdown(addr, handle);
}

#[test]
fn truncated_mid_frame_disconnect_tears_down_cleanly() {
    let (addr, handle) = spawn_daemon(tight_limits());
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.write_all(&100u32.to_be_bytes()).unwrap();
        raw.write_all(&[6u8; 10]).unwrap();
        // Drop mid-frame: the daemon sees EOF with 90 bytes missing.
    }
    assert_alive(addr);
    shutdown(addr, handle);
}

#[test]
fn zero_length_frame_is_malformed() {
    let (addr, handle) = spawn_daemon(tight_limits());
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(&0u32.to_be_bytes()).unwrap();
    let response = read_frame(&mut raw, 1 << 20).unwrap();
    match Response::decode(&response).unwrap() {
        Response::Error(msg) => assert!(msg.contains("zero-length"), "unexpected reason: {msg}"),
        other => panic!("expected error frame, got {other:?}"),
    }
    assert_alive(addr);
    shutdown(addr, handle);
}

#[test]
fn interleaved_tags_answer_in_order_and_survive_unknowns() {
    let (addr, handle) = spawn_daemon(tight_limits());
    let mut client = NetClient::connect(addr).unwrap();

    // A sequenced upload, answered with an ack.
    match client.call_raw(&upload_frame(1, 0)).unwrap() {
        Response::Ack(ack) => assert_eq!(ack.fresh, 1),
        other => panic!("expected ack, got {other:?}"),
    }
    // A ping interleaved between uploads.
    client.ping().unwrap();
    // An unknown tag: typed error, connection stays usable.
    match client.call_raw(&[99u8, 1, 2, 3]).unwrap() {
        Response::Error(msg) => assert!(msg.contains("unknown frame tag 99"), "got: {msg}"),
        other => panic!("expected error frame, got {other:?}"),
    }
    // A storage tag (checkpoints never arrive over a client socket).
    match client.call_raw(&[7u8]).unwrap() {
        Response::Error(msg) => assert!(msg.contains("not addressed"), "got: {msg}"),
        other => panic!("expected error frame, got {other:?}"),
    }
    // A malformed upload payload: rejected below the framing layer,
    // connection still in sync.
    let mut bad_upload = upload_frame(2, 0);
    let last = bad_upload.len() - 1;
    bad_upload.truncate(last);
    match client.call_raw(&bad_upload).unwrap() {
        Response::Error(_) => {}
        other => panic!("expected error frame, got {other:?}"),
    }
    // Another valid upload proves the stream never desynchronized.
    match client.call_raw(&upload_frame(2, 0)).unwrap() {
        Response::Ack(ack) => assert_eq!(ack.fresh, 1),
        other => panic!("expected ack, got {other:?}"),
    }
    shutdown(addr, handle);
}

#[test]
fn slow_loris_partial_frame_is_dropped_within_the_timeout() {
    let (addr, handle) = spawn_daemon(tight_limits());
    let started = Instant::now();
    let mut raw = TcpStream::connect(addr).unwrap();
    // Start a frame, then stall: two prefix bytes and silence.
    raw.write_all(&[0u8, 0]).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    // The daemon must drop the connection once the 300 ms progress
    // window lapses — an error frame is best-effort, the close is not.
    let mut remainder = Vec::new();
    let _ = raw.read_to_end(&mut remainder);
    assert!(
        started.elapsed() < Duration::from_secs(8),
        "stalled connection must be dropped by the read timeout, not held"
    );
    if !remainder.is_empty() {
        let payload = read_frame(&mut remainder.as_slice(), 1 << 20).unwrap();
        match Response::decode(&payload).unwrap() {
            Response::Error(msg) => assert!(msg.contains("progress"), "got: {msg}"),
            other => panic!("expected timeout error frame, got {other:?}"),
        }
    }
    assert_alive(addr);
    shutdown(addr, handle);
}

#[test]
fn idle_connections_are_not_slow_loris_victims() {
    let (addr, handle) = spawn_daemon(tight_limits());
    let mut client = NetClient::connect(addr).unwrap();
    client.ping().unwrap();
    // Idle well past the 300 ms progress window: between frames the
    // daemon must wait indefinitely.
    std::thread::sleep(Duration::from_millis(900));
    client.ping().expect("idle connection must stay open");
    shutdown(addr, handle);
}

#[test]
fn byte_rate_budget_throttles_without_dropping() {
    let (addr, handle) = spawn_daemon(ConnectionLimits {
        max_bytes_per_sec: Some(4_096),
        ..tight_limits()
    });
    let mut client = NetClient::connect(addr).unwrap();
    // ~8 KiB of uploads against a 4 KiB/s budget: every frame must
    // still be acked — throttling delays, it never rejects.
    let frames: Vec<Vec<u8>> = (0..100).map(|i| upload_frame(i + 1, 0)).collect();
    let total_bytes: usize = frames.iter().map(|f| f.len() + 4).sum();
    assert!(
        total_bytes > 6_000,
        "workload must exceed the first-second burst"
    );
    let started = Instant::now();
    let ack = client.ingest_pipelined(&frames).unwrap();
    assert_eq!(ack.frames, 100);
    assert_eq!(ack.fresh, 100);
    assert!(
        started.elapsed() > Duration::from_millis(200),
        "an over-budget replay should have been visibly throttled"
    );
    shutdown(addr, handle);
}
