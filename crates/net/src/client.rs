//! A blocking client for `vcpsd` — request/response calls plus a
//! pipelined ingest path for replay workloads.

use std::net::{TcpStream, ToSocketAddrs};

use vcps_core::PairEstimate;

use crate::wire::{
    self, AckSummary, Response, WireMatrix, REQ_FINISH_PERIOD, REQ_PING, REQ_SHUTDOWN,
};
use crate::NetError;

/// A connection to a running daemon.
#[derive(Debug)]
pub struct NetClient {
    stream: TcpStream,
    max_frame_bytes: u64,
}

impl NetClient {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, NetError> {
        let stream = TcpStream::connect(addr).map_err(NetError::Io)?;
        stream.set_nodelay(true).map_err(NetError::Io)?;
        Ok(Self {
            stream,
            max_frame_bytes: u64::from(u32::MAX),
        })
    }

    fn call(&mut self, payload: &[u8]) -> Result<Response, NetError> {
        wire::write_frame(&mut self.stream, payload)?;
        let resp = wire::read_frame(&mut self.stream, self.max_frame_bytes)?;
        match Response::decode(&resp)? {
            Response::Error(msg) => Err(NetError::Server(msg)),
            other => Ok(other),
        }
    }

    /// Sends one upload wire frame (tags 3–6) and waits for its ack.
    ///
    /// # Errors
    ///
    /// [`NetError::Server`] if the daemon rejected the frame, transport
    /// errors otherwise.
    pub fn ingest(&mut self, upload_wire: &[u8]) -> Result<AckSummary, NetError> {
        match self.call(upload_wire)? {
            Response::Ack(ack) => Ok(ack),
            other => Err(unexpected(&other)),
        }
    }

    /// Sends every frame without waiting, collecting acks concurrently
    /// on a reader thread — the pipelined replay path. The daemon's
    /// `max_frames_in_flight` budget bounds how far ahead the sends can
    /// run; beyond it this call is flow-controlled by TCP itself.
    ///
    /// # Errors
    ///
    /// The first transport or server error on either half.
    ///
    /// # Panics
    ///
    /// Panics if the ack-reader thread panics.
    pub fn ingest_pipelined<I>(&mut self, frames: I) -> Result<AckSummary, NetError>
    where
        I: IntoIterator,
        I::Item: AsRef<[u8]>,
    {
        let mut reader = self.stream.try_clone().map_err(NetError::Io)?;
        let max_frame_bytes = self.max_frame_bytes;
        let (count_tx, count_rx) = std::sync::mpsc::channel::<usize>();
        let collector = std::thread::spawn(move || -> Result<AckSummary, NetError> {
            let mut total = AckSummary::default();
            let expected = count_rx.recv().unwrap_or(0);
            for _ in 0..expected {
                let payload = wire::read_frame(&mut reader, max_frame_bytes)?;
                match Response::decode(&payload)? {
                    Response::Ack(ack) => total.merge(&ack),
                    Response::Error(msg) => return Err(NetError::Server(msg)),
                    other => return Err(unexpected(&other)),
                }
            }
            Ok(total)
        });
        let mut sent = 0usize;
        let mut send_err = None;
        for frame in frames {
            if let Err(e) = wire::write_frame(&mut self.stream, frame.as_ref()) {
                send_err = Some(e);
                break;
            }
            sent += 1;
        }
        let _ = count_tx.send(sent);
        let collected = collector.join().expect("ack reader panicked");
        match send_err {
            Some(e) => Err(e),
            None => collected,
        }
    }

    /// Queries the point-to-point volume of one RSU pair.
    ///
    /// # Errors
    ///
    /// [`NetError::Server`] for unknown RSUs, transport errors
    /// otherwise.
    pub fn pair_query(&mut self, rsu_a: u64, rsu_b: u64) -> Result<PairEstimate, NetError> {
        match self.call(&wire::encode_pair_query(rsu_a, rsu_b))? {
            Response::Estimate(e) => Ok(e),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the full O–D matrix (`threads == 0` = daemon default).
    ///
    /// # Errors
    ///
    /// As [`pair_query`](Self::pair_query).
    pub fn od_query(&mut self, threads: u64) -> Result<WireMatrix, NetError> {
        match self.call(&wire::encode_od_query(threads))? {
            Response::Matrix(m) => Ok(m),
            other => Err(unexpected(&other)),
        }
    }

    /// Ends the measurement period; returns `(rsu, next_period_bits)`.
    ///
    /// # Errors
    ///
    /// As [`pair_query`](Self::pair_query).
    pub fn finish_period(&mut self) -> Result<Vec<(u64, u64)>, NetError> {
        match self.call(&[REQ_FINISH_PERIOD])? {
            Response::Sizes(sizes) => Ok(sizes),
            other => Err(unexpected(&other)),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Transport errors.
    pub fn ping(&mut self) -> Result<(), NetError> {
        match self.call(&[REQ_PING])? {
            Response::Ok => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the daemon to drain, flush its WAL, and exit.
    ///
    /// # Errors
    ///
    /// Transport errors.
    pub fn shutdown(&mut self) -> Result<(), NetError> {
        match self.call(&[REQ_SHUTDOWN])? {
            Response::Ok => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Sends a raw pre-framed payload and returns the decoded response
    /// without interpreting it — the malformed-stream tests' entry
    /// point.
    ///
    /// # Errors
    ///
    /// Transport and codec errors.
    pub fn call_raw(&mut self, payload: &[u8]) -> Result<Response, NetError> {
        wire::write_frame(&mut self.stream, payload)?;
        let resp = wire::read_frame(&mut self.stream, self.max_frame_bytes)?;
        Response::decode(&resp)
    }

    /// The underlying stream, for tests that need byte-level control.
    #[must_use]
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }
}

fn unexpected(resp: &Response) -> NetError {
    NetError::Server(format!("unexpected response: {resp:?}"))
}
