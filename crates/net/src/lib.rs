//! `vcps-net`: the socket layer of the VCPS measurement server.
//!
//! The paper's pipeline assumes RSUs report to a central server over a
//! real network; until this crate, every server path in the workspace
//! was exercised through in-process calls. `vcps-net` provides:
//!
//! * [`Daemon`] — `vcpsd`'s engine: a `std::net` TCP accept loop,
//!   length-delimited framing with the prefix capped *before*
//!   allocation, per-connection DoS budgets ([`ConnectionLimits`]), and
//!   dispatch into the existing [`ShardedServer`]
//!   (zero-copy `receive_batch_wire` by default) or a WAL-backed
//!   [`DurableServer`];
//! * [`NetClient`] — a blocking request/response client with a
//!   pipelined ingest path;
//! * [`workload`] — synthetic-city replay frames for the
//!   load-generator binary and the differential tests.
//!
//! See DESIGN.md §19 for the framing grammar, the threading model, and
//! the shutdown/durability contract.
//!
//! [`ShardedServer`]: vcps_sim::ShardedServer
//! [`DurableServer`]: vcps_sim::DurableServer

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod error;
mod limits;
mod server;
pub mod wire;
pub mod workload;

pub use client::NetClient;
pub use error::NetError;
pub use limits::ConnectionLimits;
pub use server::{Daemon, DaemonConfig, DaemonHandle};
pub use wire::{AckSummary, Response, WireMatrix};
