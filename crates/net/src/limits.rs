//! Per-connection DoS budgets.
//!
//! Every limit here bounds a resource a single remote peer could
//! otherwise spend on the daemon's behalf: heap (frame size), queue
//! memory and lock pressure (frames in flight), CPU and WAL bandwidth
//! (bytes per second), and parked reader threads (read timeout on a
//! started frame). The limits compose with the protocol's own caps —
//! `MAX_UPLOAD_BITS` and `MAX_BATCH_FRAMES` still bound what a frame
//! that *fits* may claim once decoded.

use std::time::Duration;

/// Resource budgets enforced on each accepted connection.
#[derive(Debug, Clone)]
pub struct ConnectionLimits {
    /// Hard cap on a frame's length prefix, checked before the payload
    /// buffer is allocated. A prefix over this answers with an error
    /// frame and closes the connection.
    pub max_frame_bytes: u64,
    /// How many read-but-unprocessed frames one connection may queue.
    /// The reader thread blocks once the queue is full, which stops
    /// draining the socket and lets ordinary TCP flow control push back
    /// on the peer.
    pub max_frames_in_flight: usize,
    /// Sustained ingest budget in bytes per second (token bucket,
    /// burst = one second's allowance). `None` disables throttling.
    /// Excess traffic is *delayed*, not rejected — the reader sleeps
    /// until the bucket refills.
    pub max_bytes_per_sec: Option<u64>,
    /// Once a frame has started arriving, every subsequent read must
    /// make progress within this window or the connection is dropped —
    /// the slow-loris guard. Idle time *between* frames is unlimited.
    pub read_timeout: Duration,
    /// How many connections the daemon serves at once; further accepts
    /// are answered with an error frame and closed.
    pub max_connections: usize,
}

impl Default for ConnectionLimits {
    fn default() -> Self {
        Self {
            // Generous for batch frames (2^16 uploads of modest arrays)
            // while keeping a hostile prefix's allocation bounded.
            max_frame_bytes: 64 << 20,
            max_frames_in_flight: 64,
            max_bytes_per_sec: None,
            read_timeout: Duration::from_secs(10),
            max_connections: 64,
        }
    }
}

/// A minimal token bucket over a monotonic clock: `take` blocks (by
/// sleeping) until the requested bytes fit the refill rate. Burst
/// capacity is one second's allowance, so a peer can never be owed more
/// than `rate` bytes of instantaneous credit.
#[derive(Debug)]
pub(crate) struct TokenBucket {
    rate: u64,
    available: f64,
    last: std::time::Instant,
}

impl TokenBucket {
    pub(crate) fn new(rate: u64) -> Self {
        Self {
            rate,
            available: rate as f64,
            last: std::time::Instant::now(),
        }
    }

    /// Debits `bytes`, sleeping until the bucket covers them. Returns
    /// how long it slept (for the throttle counter).
    pub(crate) fn take(&mut self, bytes: u64) -> Duration {
        let now = std::time::Instant::now();
        self.available = (self.available
            + now.duration_since(self.last).as_secs_f64() * self.rate as f64)
            .min(self.rate as f64);
        self.last = now;
        let mut slept = Duration::ZERO;
        if (bytes as f64) > self.available {
            let deficit = bytes as f64 - self.available;
            let wait = Duration::from_secs_f64(deficit / self.rate as f64);
            std::thread::sleep(wait);
            slept = wait;
            self.last = std::time::Instant::now();
        }
        self.available -= bytes as f64;
        slept
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_finite_and_positive() {
        let l = ConnectionLimits::default();
        assert!(l.max_frame_bytes > 0);
        assert!(l.max_frames_in_flight > 0);
        assert!(l.max_connections > 0);
        assert!(l.read_timeout > Duration::ZERO);
    }

    #[test]
    fn token_bucket_delays_over_budget_traffic() {
        let mut bucket = TokenBucket::new(1_000_000);
        // Within the initial burst: no sleep.
        assert_eq!(bucket.take(1_000), Duration::ZERO);
        // Drain the burst, then ask for more than remains: must sleep.
        bucket.take(999_000);
        let slept = bucket.take(100_000);
        assert!(slept > Duration::ZERO);
    }
}
