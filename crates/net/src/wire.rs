//! Length-delimited framing and the daemon's request/response codec.
//!
//! The outer frame is a 4-byte big-endian length prefix followed by
//! exactly that many payload bytes. The prefix is validated against the
//! connection's [`max_frame_bytes`](crate::ConnectionLimits) cap
//! *before* the payload buffer is allocated, so a hostile prefix can
//! name four gigabytes without costing the daemon more than four bytes
//! of reads.
//!
//! Payloads are self-describing via their first byte. Tags 1–8 are the
//! simulator's existing wire protocol (uploads, batches, checkpoints)
//! and pass through byte-for-byte — the daemon feeds them to
//! [`ShardedServer::receive_batch_wire`](vcps_sim::ShardedServer::receive_batch_wire)
//! and friends without re-encoding. Tags 16–20 are daemon requests and
//! 32–37 daemon responses, defined here. All integers are big-endian;
//! floating-point fields travel as IEEE-754 bit patterns
//! (`f64::to_bits`), so an estimate survives the wire bit-identically —
//! the property the differential tests pin.

use std::io::{Read, Write};

use vcps_core::{DegradedEstimate, Estimate, PairEstimate};
use vcps_sim::ReceiveOutcome;

use crate::NetError;

/// Request: pair volume query — `[16][rsu_a u64][rsu_b u64]`.
pub const REQ_PAIR_QUERY: u8 = 16;
/// Request: full O–D matrix — `[17][threads u64]` (0 = server default).
pub const REQ_OD_QUERY: u8 = 17;
/// Request: end the measurement period — `[18]`.
pub const REQ_FINISH_PERIOD: u8 = 18;
/// Request: orderly daemon shutdown (drain, flush WAL, exit) — `[19]`.
pub const REQ_SHUTDOWN: u8 = 19;
/// Request: liveness probe — `[20]`.
pub const REQ_PING: u8 = 20;

/// Response: ingest acknowledgement with per-outcome counts.
pub const RESP_ACK: u8 = 32;
/// Response: one pair estimate.
pub const RESP_ESTIMATE: u8 = 33;
/// Response: the O–D matrix.
pub const RESP_MATRIX: u8 = 34;
/// Response: next-period array sizes.
pub const RESP_SIZES: u8 = 35;
/// Response: request failed; carries a human-readable reason.
pub const RESP_ERROR: u8 = 36;
/// Response: request succeeded with nothing to report.
pub const RESP_OK: u8 = 37;

/// Writes one length-delimited frame.
///
/// # Errors
///
/// Propagates transport failures; [`NetError::FrameTooLarge`] if the
/// payload itself exceeds the u32 prefix space.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), NetError> {
    let len = u32::try_from(payload.len()).map_err(|_| NetError::FrameTooLarge {
        claimed: payload.len() as u64,
        limit: u64::from(u32::MAX),
    })?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    Ok(())
}

/// Reads one length-delimited frame, capping the prefix at
/// `max_frame_bytes` **before** allocating the payload buffer.
///
/// # Errors
///
/// [`NetError::FrameTooLarge`] for an over-cap prefix,
/// [`NetError::Malformed`] for a zero-length frame,
/// [`NetError::UnexpectedEof`] if the peer disconnects mid-frame, and
/// [`NetError::Timeout`]/[`NetError::Io`] for transport failures.
pub fn read_frame(r: &mut impl Read, max_frame_bytes: u64) -> Result<Vec<u8>, NetError> {
    let mut prefix = [0u8; 4];
    r.read_exact(&mut prefix)?;
    let len = u64::from(u32::from_be_bytes(prefix));
    if len == 0 {
        return Err(NetError::Malformed("zero-length frame"));
    }
    if len > max_frame_bytes {
        return Err(NetError::FrameTooLarge {
            claimed: len,
            limit: max_frame_bytes,
        });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// A bounds-checked big-endian reader over a response payload.
#[derive(Debug)]
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Self { buf }
    }

    pub(crate) fn u8(&mut self) -> Result<u8, NetError> {
        let (&b, rest) = self
            .buf
            .split_first()
            .ok_or(NetError::Malformed("truncated payload"))?;
        self.buf = rest;
        Ok(b)
    }

    pub(crate) fn u64(&mut self) -> Result<u64, NetError> {
        if self.buf.len() < 8 {
            return Err(NetError::Malformed("truncated payload"));
        }
        let (head, rest) = self.buf.split_at(8);
        self.buf = rest;
        Ok(u64::from_be_bytes(head.try_into().expect("eight bytes")))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, NetError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub(crate) fn bytes(&mut self, n: usize) -> Result<&'a [u8], NetError> {
        if self.buf.len() < n {
            return Err(NetError::Malformed("truncated payload"));
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    pub(crate) fn finish(self) -> Result<(), NetError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(NetError::Malformed("trailing bytes in payload"))
        }
    }
}

/// Aggregated ingest outcomes for one upload frame (response tag 32).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AckSummary {
    /// Inner frames carried by the acknowledged wire frame.
    pub frames: u64,
    /// Count of [`ReceiveOutcome::Fresh`].
    pub fresh: u64,
    /// Count of [`ReceiveOutcome::Duplicate`].
    pub duplicate: u64,
    /// Count of [`ReceiveOutcome::Conflicting`].
    pub conflicting: u64,
    /// Count of [`ReceiveOutcome::Stale`].
    pub stale: u64,
}

impl AckSummary {
    /// Tallies a batch's outcomes.
    #[must_use]
    pub fn from_outcomes(outcomes: &[ReceiveOutcome]) -> Self {
        let mut ack = Self {
            frames: outcomes.len() as u64,
            ..Self::default()
        };
        for o in outcomes {
            match o {
                ReceiveOutcome::Fresh => ack.fresh += 1,
                ReceiveOutcome::Duplicate => ack.duplicate += 1,
                ReceiveOutcome::Conflicting => ack.conflicting += 1,
                ReceiveOutcome::Stale => ack.stale += 1,
            }
        }
        ack
    }

    /// Encodes as a response payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(1 + 8 * 5);
        buf.push(RESP_ACK);
        for v in [
            self.frames,
            self.fresh,
            self.duplicate,
            self.conflicting,
            self.stale,
        ] {
            buf.extend_from_slice(&v.to_be_bytes());
        }
        buf
    }

    fn decode_body(cur: &mut Cursor<'_>) -> Result<Self, NetError> {
        Ok(Self {
            frames: cur.u64()?,
            fresh: cur.u64()?,
            duplicate: cur.u64()?,
            conflicting: cur.u64()?,
            stale: cur.u64()?,
        })
    }

    /// Merges another summary into this one (for pipelined replays).
    pub fn merge(&mut self, other: &AckSummary) {
        self.frames += other.frames;
        self.fresh += other.fresh;
        self.duplicate += other.duplicate;
        self.conflicting += other.conflicting;
        self.stale += other.stale;
    }
}

/// The canonical bit pattern of a pair answer: every `f64` field as
/// raw IEEE-754 bits, prefixed with the arm. Two answers are equal
/// under the repo's bit-identity contract iff these vectors are equal —
/// stricter than `PartialEq` (which would also say sign-of-zero and
/// NaN-payload drifts are fine). The differential tests and the load
/// generator compare through this.
#[must_use]
pub fn estimate_bits(e: &PairEstimate) -> Vec<u64> {
    match e {
        PairEstimate::Measured(m) => vec![
            0,
            m.n_c.to_bits(),
            m.v_x.to_bits(),
            m.v_y.to_bits(),
            m.v_c.to_bits(),
            m.m_x as u64,
            m.m_y as u64,
            m.n_x,
            m.n_y,
            u64::from(m.clamped),
        ],
        PairEstimate::Degraded(d) => vec![
            1,
            d.n_c.to_bits(),
            d.lower.to_bits(),
            d.upper.to_bits(),
            d.volume_x.to_bits(),
            d.volume_y.to_bits(),
            u64::from(d.missing_x),
            u64::from(d.missing_y),
        ],
    }
}

const KIND_MEASURED: u8 = 0;
const KIND_DEGRADED: u8 = 1;
const KIND_ABSENT: u8 = 2;

fn put_pair_estimate(buf: &mut Vec<u8>, e: &PairEstimate) {
    match e {
        PairEstimate::Measured(m) => {
            buf.push(KIND_MEASURED);
            for v in [m.n_c, m.v_x, m.v_y, m.v_c] {
                buf.extend_from_slice(&v.to_bits().to_be_bytes());
            }
            for v in [m.m_x as u64, m.m_y as u64, m.n_x, m.n_y] {
                buf.extend_from_slice(&v.to_be_bytes());
            }
            buf.push(u8::from(m.clamped));
        }
        PairEstimate::Degraded(d) => {
            buf.push(KIND_DEGRADED);
            for v in [d.n_c, d.lower, d.upper, d.volume_x, d.volume_y] {
                buf.extend_from_slice(&v.to_bits().to_be_bytes());
            }
            buf.push(u8::from(d.missing_x));
            buf.push(u8::from(d.missing_y));
        }
    }
}

fn get_pair_estimate(cur: &mut Cursor<'_>) -> Result<Option<PairEstimate>, NetError> {
    match cur.u8()? {
        KIND_MEASURED => {
            let (n_c, v_x, v_y, v_c) = (cur.f64()?, cur.f64()?, cur.f64()?, cur.f64()?);
            let m_x = usize::try_from(cur.u64()?)
                .map_err(|_| NetError::Malformed("array size overflows usize"))?;
            let m_y = usize::try_from(cur.u64()?)
                .map_err(|_| NetError::Malformed("array size overflows usize"))?;
            let (n_x, n_y) = (cur.u64()?, cur.u64()?);
            let clamped = cur.u8()? != 0;
            Ok(Some(PairEstimate::Measured(Estimate {
                n_c,
                v_x,
                v_y,
                v_c,
                m_x,
                m_y,
                n_x,
                n_y,
                clamped,
            })))
        }
        KIND_DEGRADED => {
            let (n_c, lower, upper) = (cur.f64()?, cur.f64()?, cur.f64()?);
            let (volume_x, volume_y) = (cur.f64()?, cur.f64()?);
            let missing_x = cur.u8()? != 0;
            let missing_y = cur.u8()? != 0;
            Ok(Some(PairEstimate::Degraded(DegradedEstimate {
                n_c,
                lower,
                upper,
                volume_x,
                volume_y,
                missing_x,
                missing_y,
            })))
        }
        KIND_ABSENT => Ok(None),
        _ => Err(NetError::Malformed("unknown estimate kind")),
    }
}

/// Encodes a pair-estimate response (tag 33).
#[must_use]
pub fn encode_estimate_response(e: &PairEstimate) -> Vec<u8> {
    let mut buf = vec![RESP_ESTIMATE];
    put_pair_estimate(&mut buf, e);
    buf
}

/// An O–D matrix as decoded off the wire: RSU ids plus the strict upper
/// triangle of pair answers (the lower triangle is the transpose, as in
/// [`OdMatrix`](vcps_sim::OdMatrix)).
#[derive(Debug, Clone, PartialEq)]
pub struct WireMatrix {
    /// The RSU ids, ascending — row/column order of the triangle.
    pub rsus: Vec<u64>,
    /// Upper-triangle entries in `(i, j), i < j` row-major order.
    pub entries: Vec<Option<PairEstimate>>,
}

impl WireMatrix {
    /// The pair answer for `(i, j)`, `i != j`, honoring transposition.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range or `i == j` (the diagonal is
    /// not a pair).
    #[must_use]
    pub fn at(&self, i: usize, j: usize) -> Option<PairEstimate> {
        let n = self.rsus.len();
        assert!(i < n && j < n && i != j, "invalid pair ({i}, {j}) of {n}");
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        let idx = a * n - a * (a + 1) / 2 + (b - a - 1);
        let entry = self.entries[idx]?;
        Some(if i < j { entry } else { entry.transposed() })
    }
}

/// Encodes an O–D matrix response (tag 34) from the server's matrix.
#[must_use]
pub fn encode_matrix_response(matrix: &vcps_sim::OdMatrix) -> Vec<u8> {
    let n = matrix.len();
    let mut buf = vec![RESP_MATRIX];
    buf.extend_from_slice(&(n as u64).to_be_bytes());
    for rsu in matrix.rsus() {
        buf.extend_from_slice(&rsu.0.to_be_bytes());
    }
    for i in 0..n {
        for j in i + 1..n {
            match matrix.at(i, j) {
                Some(e) => put_pair_estimate(&mut buf, e),
                None => buf.push(KIND_ABSENT),
            }
        }
    }
    buf
}

/// Encodes a next-period sizes response (tag 35).
#[must_use]
pub fn encode_sizes_response(sizes: &[(u64, u64)]) -> Vec<u8> {
    let mut buf = vec![RESP_SIZES];
    buf.extend_from_slice(&(sizes.len() as u64).to_be_bytes());
    for &(rsu, size) in sizes {
        buf.extend_from_slice(&rsu.to_be_bytes());
        buf.extend_from_slice(&size.to_be_bytes());
    }
    buf
}

/// Encodes an error response (tag 36).
#[must_use]
pub fn encode_error_response(message: &str) -> Vec<u8> {
    let msg = message.as_bytes();
    let len = msg.len().min(u16::MAX as usize);
    let mut buf = Vec::with_capacity(3 + len);
    buf.push(RESP_ERROR);
    buf.extend_from_slice(&(len as u16).to_be_bytes());
    buf.extend_from_slice(&msg[..len]);
    buf
}

/// Everything a daemon can answer with, decoded.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Tag 32 — ingest acknowledged.
    Ack(AckSummary),
    /// Tag 33 — a pair estimate.
    Estimate(PairEstimate),
    /// Tag 34 — the O–D matrix.
    Matrix(WireMatrix),
    /// Tag 35 — next-period sizes as `(rsu, bits)` pairs.
    Sizes(Vec<(u64, u64)>),
    /// Tag 36 — the request failed.
    Error(String),
    /// Tag 37 — success, nothing to report.
    Ok,
}

impl Response {
    /// Decodes a response payload.
    ///
    /// # Errors
    ///
    /// [`NetError::Malformed`] on truncation, trailing bytes, or an
    /// unknown response tag.
    pub fn decode(payload: &[u8]) -> Result<Self, NetError> {
        let mut cur = Cursor::new(payload);
        let resp = match cur.u8()? {
            RESP_ACK => Response::Ack(AckSummary::decode_body(&mut cur)?),
            RESP_ESTIMATE => {
                let e = get_pair_estimate(&mut cur)?
                    .ok_or(NetError::Malformed("estimate response without estimate"))?;
                Response::Estimate(e)
            }
            RESP_MATRIX => {
                let n = usize::try_from(cur.u64()?)
                    .map_err(|_| NetError::Malformed("matrix size overflows usize"))?;
                // n is bounded by the frame length: every RSU id costs 8
                // bytes, so an over-claimed n fails the reads below
                // rather than a giant reservation here.
                let mut rsus = Vec::new();
                for _ in 0..n {
                    rsus.push(cur.u64()?);
                }
                let mut entries = Vec::new();
                for _ in 0..n * (n.saturating_sub(1)) / 2 {
                    entries.push(get_pair_estimate(&mut cur)?);
                }
                Response::Matrix(WireMatrix { rsus, entries })
            }
            RESP_SIZES => {
                let n = usize::try_from(cur.u64()?)
                    .map_err(|_| NetError::Malformed("sizes count overflows usize"))?;
                let mut sizes = Vec::new();
                for _ in 0..n {
                    sizes.push((cur.u64()?, cur.u64()?));
                }
                Response::Sizes(sizes)
            }
            RESP_ERROR => {
                let len = usize::from(u16::from_be_bytes([cur.u8()?, cur.u8()?]));
                let msg = String::from_utf8_lossy(cur.bytes(len)?).into_owned();
                Response::Error(msg)
            }
            RESP_OK => Response::Ok,
            tag => return Err(NetError::UnknownTag(tag)),
        };
        cur.finish()?;
        Ok(resp)
    }
}

/// Builds a pair-query request payload.
#[must_use]
pub fn encode_pair_query(rsu_a: u64, rsu_b: u64) -> Vec<u8> {
    let mut buf = vec![REQ_PAIR_QUERY];
    buf.extend_from_slice(&rsu_a.to_be_bytes());
    buf.extend_from_slice(&rsu_b.to_be_bytes());
    buf
}

/// Builds an O–D query request payload (`threads == 0` means the
/// daemon's configured default).
#[must_use]
pub fn encode_od_query(threads: u64) -> Vec<u8> {
    let mut buf = vec![REQ_OD_QUERY];
    buf.extend_from_slice(&threads.to_be_bytes());
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        assert_eq!(wire.len(), 4 + 5);
        let got = read_frame(&mut wire.as_slice(), 1024).unwrap();
        assert_eq!(got, b"hello");
    }

    #[test]
    fn oversized_prefix_is_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_be_bytes());
        match read_frame(&mut wire.as_slice(), 1 << 20) {
            Err(NetError::FrameTooLarge { claimed, limit }) => {
                assert_eq!(claimed, u64::from(u32::MAX));
                assert_eq!(limit, 1 << 20);
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn zero_length_frame_is_rejected() {
        let wire = 0u32.to_be_bytes();
        assert!(matches!(
            read_frame(&mut wire.as_slice(), 1024),
            Err(NetError::Malformed("zero-length frame"))
        ));
    }

    #[test]
    fn truncated_frame_is_eof() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&100u32.to_be_bytes());
        wire.extend_from_slice(&[1, 2, 3]);
        assert!(matches!(
            read_frame(&mut wire.as_slice(), 1024),
            Err(NetError::UnexpectedEof)
        ));
    }

    #[test]
    fn estimate_roundtrip_is_bit_exact() {
        let measured = PairEstimate::Measured(Estimate {
            n_c: 123.456_789,
            v_x: 0.1,
            v_y: 0.2,
            v_c: 0.05,
            m_x: 1 << 10,
            m_y: 1 << 12,
            n_x: 500,
            n_y: 900,
            clamped: false,
        });
        let resp = Response::decode(&encode_estimate_response(&measured)).unwrap();
        match resp {
            Response::Estimate(PairEstimate::Measured(e)) => {
                assert_eq!(e.n_c.to_bits(), 123.456_789f64.to_bits());
                assert_eq!(e.m_y, 1 << 12);
            }
            other => panic!("unexpected {other:?}"),
        }

        let degraded =
            PairEstimate::Degraded(DegradedEstimate::from_volumes(10.0, 30.0, true, false));
        match Response::decode(&encode_estimate_response(&degraded)).unwrap() {
            Response::Estimate(d) => assert_eq!(d, degraded),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ack_roundtrip_and_merge() {
        use vcps_sim::ReceiveOutcome as O;
        let mut ack = AckSummary::from_outcomes(&[O::Fresh, O::Fresh, O::Duplicate, O::Stale]);
        assert_eq!(ack.frames, 4);
        assert_eq!(ack.fresh, 2);
        match Response::decode(&ack.encode()).unwrap() {
            Response::Ack(got) => assert_eq!(got, ack),
            other => panic!("unexpected {other:?}"),
        }
        ack.merge(&AckSummary::from_outcomes(&[O::Conflicting]));
        assert_eq!(ack.frames, 5);
        assert_eq!(ack.conflicting, 1);
    }

    #[test]
    fn error_response_roundtrip() {
        match Response::decode(&encode_error_response("nope")).unwrap() {
            Response::Error(msg) => assert_eq!(msg, "nope"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn trailing_bytes_are_malformed() {
        let mut payload = vec![RESP_OK];
        payload.push(0);
        assert!(matches!(
            Response::decode(&payload),
            Err(NetError::Malformed("trailing bytes in payload"))
        ));
    }
}
