//! Turns a [`SyntheticCity`] into the wire frames a fleet of RSUs would
//! send — shared by the load-generator binary and the differential
//! tests.
//!
//! RSUs are partitioned across connections by index (`j % connections`),
//! which is what makes multi-connection replay *bit-identical* to the
//! sequential monolith: dedup and sequencing state is per-RSU, each
//! RSU's frames stay on one ordered connection, and cross-RSU
//! interleavings commute.

use vcps_core::{RsuId, RsuSketch, Scheme};
use vcps_sim::synthetic::SyntheticCity;
use vcps_sim::{BatchUpload, PeriodUpload, SequencedUpload};

/// One period's upload for every RSU of the city, sized per the scheme.
///
/// # Panics
///
/// Panics if the scheme cannot size or hold the city (not reachable for
/// power-of-two variable sizing and sane volumes).
#[must_use]
pub fn city_uploads(scheme: &Scheme, city: &SyntheticCity) -> Vec<PeriodUpload> {
    let n = city.rsu_count();
    let sizes: Vec<usize> = (0..n)
        .map(|j| {
            scheme
                .array_size_for(city.volume(j) as f64)
                .expect("city volume must be sizeable")
        })
        .collect();
    let m_o = sizes.iter().copied().max().expect("at least one RSU");
    let mut sketches: Vec<RsuSketch> = (0..n)
        .map(|j| RsuSketch::new(RsuId(j as u64 + 1), sizes[j]).expect("valid size"))
        .collect();
    for (vehicle, visited) in city.vehicles() {
        for &j in visited {
            let rsu = RsuId(j as u64 + 1);
            let index = scheme.report_index(vehicle, rsu, sizes[j], m_o);
            sketches[j].record(index).expect("index in range");
        }
    }
    sketches
        .into_iter()
        .map(|sketch| PeriodUpload {
            rsu: sketch.id(),
            counter: sketch.count(),
            bits: sketch.bits().clone(),
        })
        .collect()
}

/// Builds the replay: `connections` independent streams, each carrying
/// `periods` batch frames (tag 6) over its RSU partition. Re-sending
/// the same content at ascending sequence numbers keeps the final
/// server state identical to a single period while multiplying ingest
/// volume — exactly what a throughput bench wants.
#[must_use]
pub fn city_replay_frames(
    scheme: &Scheme,
    city: &SyntheticCity,
    periods: u64,
    connections: usize,
) -> Vec<Vec<Vec<u8>>> {
    assert!(connections > 0, "need at least one connection");
    assert!(periods > 0, "need at least one period");
    let uploads = city_uploads(scheme, city);
    (0..connections)
        .map(|c| {
            let partition: Vec<&PeriodUpload> = uploads
                .iter()
                .enumerate()
                .filter(|(j, _)| j % connections == c)
                .map(|(_, u)| u)
                .collect();
            (0..periods)
                .filter(|_| !partition.is_empty())
                .map(|seq| {
                    let frames: Vec<SequencedUpload> = partition
                        .iter()
                        .map(|&u| SequencedUpload {
                            seq,
                            upload: u.clone(),
                        })
                        .collect();
                    BatchUpload::new(frames)
                        .expect("ascending RSU ids within a partition")
                        .encode()
                        .to_vec()
                })
                .collect()
        })
        .collect()
}

/// Flattens per-connection streams into the canonical sequential order
/// (period-major, connection-minor) the in-process reference server
/// ingests — any serialization the daemon's lock actually picked yields
/// the same state, so comparing against this one order suffices.
#[must_use]
pub fn reference_order(frames_by_connection: &[Vec<Vec<u8>>]) -> Vec<&[u8]> {
    let max_len = frames_by_connection.iter().map(Vec::len).max().unwrap_or(0);
    let mut ordered = Vec::new();
    for period in 0..max_len {
        for stream in frames_by_connection {
            if let Some(frame) = stream.get(period) {
                ordered.push(frame.as_slice());
            }
        }
    }
    ordered
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_partitions_cover_every_rsu_exactly_once() {
        let scheme = Scheme::variable(2, 3.0, 7).unwrap();
        let city = SyntheticCity::generate(&[0.3, 0.5, 0.2, 0.4, 0.6], 2_000, 11);
        let streams = city_replay_frames(&scheme, &city, 2, 2);
        assert_eq!(streams.len(), 2);
        let mut rsus_seen = Vec::new();
        for stream in &streams {
            assert_eq!(stream.len(), 2, "one batch per period per connection");
            let batch = BatchUpload::decode(&stream[0]).unwrap();
            for f in batch.frames() {
                rsus_seen.push(f.upload.rsu.0);
            }
        }
        rsus_seen.sort_unstable();
        assert_eq!(rsus_seen, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn reference_order_is_period_major() {
        let streams = vec![
            vec![vec![1u8], vec![3u8]],
            vec![vec![2u8], vec![4u8], vec![5u8]],
        ];
        let flat: Vec<u8> = reference_order(&streams).iter().map(|f| f[0]).collect();
        assert_eq!(flat, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn counters_match_ground_truth_volumes() {
        let scheme = Scheme::variable(2, 3.0, 3).unwrap();
        let city = SyntheticCity::generate(&[0.4, 0.1], 1_000, 5);
        let uploads = city_uploads(&scheme, &city);
        assert_eq!(uploads[0].counter, city.volume(0));
        assert_eq!(uploads[1].counter, city.volume(1));
    }
}
