//! Typed errors for the daemon's framing and request layers.

use std::error::Error;
use std::fmt;
use std::io;

use vcps_sim::SimError;

/// Errors produced by the network layer — framing, limits, transport.
///
/// Every malformed or hostile input a remote peer can produce maps to a
/// variant here; none of them may panic or allocate proportionally to an
/// attacker-chosen length field.
#[derive(Debug)]
#[non_exhaustive]
pub enum NetError {
    /// A frame's length prefix exceeded the connection's cap. Detected
    /// *before* any allocation — the claimed size never touches the
    /// heap.
    FrameTooLarge {
        /// The length the prefix claimed.
        claimed: u64,
        /// The connection's `max_frame_bytes` cap.
        limit: u64,
    },
    /// The peer closed the connection mid-frame (or mid-prefix).
    UnexpectedEof,
    /// A started frame failed to make progress within the read timeout
    /// (the slow-loris guard).
    Timeout,
    /// A well-framed payload carried a tag the daemon does not serve.
    UnknownTag(u8),
    /// A frame was structurally invalid below the framing layer.
    Malformed(&'static str),
    /// The server answered a request with its error frame.
    Server(String),
    /// The server refused the connection (connection budget exhausted).
    ConnectionLimit,
    /// A transport-level I/O failure.
    Io(io::Error),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::FrameTooLarge { claimed, limit } => {
                write!(
                    f,
                    "frame length prefix {claimed} exceeds the {limit}-byte cap"
                )
            }
            NetError::UnexpectedEof => write!(f, "peer disconnected mid-frame"),
            NetError::Timeout => {
                write!(f, "no progress on a started frame within the read timeout")
            }
            NetError::UnknownTag(tag) => write!(f, "unknown frame tag {tag}"),
            NetError::Malformed(reason) => write!(f, "malformed frame: {reason}"),
            NetError::Server(msg) => write!(f, "server error: {msg}"),
            NetError::ConnectionLimit => write!(f, "server connection budget exhausted"),
            NetError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl Error for NetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        match e.kind() {
            io::ErrorKind::UnexpectedEof => NetError::UnexpectedEof,
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => NetError::Timeout,
            _ => NetError::Io(e),
        }
    }
}

impl From<SimError> for NetError {
    fn from(e: SimError) -> Self {
        match e {
            SimError::MalformedMessage { reason } => NetError::Malformed(reason),
            other => NetError::Server(other.to_string()),
        }
    }
}
