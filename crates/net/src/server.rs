//! The `vcpsd` daemon: accept loop, per-connection framing, dispatch.
//!
//! ## Threading model
//!
//! One listener thread runs the accept loop. Each accepted connection
//! gets a *reader* thread (framing, DoS budgets) and a *processor*
//! thread (decode, server mutation, responses), joined by a bounded
//! channel of `max_frames_in_flight` frames. When the processor falls
//! behind, the channel fills, the reader blocks, the socket stops being
//! drained, and ordinary TCP flow control pushes back on the peer — the
//! frames-in-flight budget *is* the backpressure mechanism.
//!
//! ## State
//!
//! All connections share one [`Backend`] (volatile
//! [`ShardedServer`] or WAL-backed
//! [`DurableServer`]) behind an `RwLock`: ingest and period rollover
//! take the write lock, pair/O–D queries the read lock. Cross-RSU
//! frame interleavings commute (dedup state is per-RSU), so any
//! serialization order the lock picks yields the same final state —
//! the property the differential tests check bit-for-bit.
//!
//! ## Shutdown
//!
//! A shutdown frame flips the shared flag and pokes the listener with a
//! loopback connect so `accept` wakes. The run loop then stops
//! accepting, waits for live connections to drain (readers notice the
//! flag at their next idle tick), and — the part that matters for
//! durability — explicitly flushes the WAL, so a group-commit tail
//! buffered under a lazy [`FlushPolicy`](vcps_sim::FlushPolicy) is
//! never dropped on the floor (`wal.dropped_buffered_records` counts
//! exactly the drops this flush prevents).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, RwLock};
use std::time::{Duration, Instant};

use vcps_core::Scheme;
use vcps_obs::Obs;
use vcps_sim::{
    BatchUpload, DurableOptions, DurableServer, PeriodUpload, SequencedUpload, SequencedUploadRef,
    ShardedServer, SimError,
};

use crate::limits::TokenBucket;
use crate::wire::{
    self, AckSummary, Cursor, REQ_FINISH_PERIOD, REQ_OD_QUERY, REQ_PAIR_QUERY, REQ_PING,
    REQ_SHUTDOWN, RESP_OK,
};
use crate::{ConnectionLimits, NetError};

/// How often blocked reads wake to check the shutdown flag.
const IDLE_TICK: Duration = Duration::from_millis(100);

/// Everything needed to stand up a daemon.
#[derive(Debug)]
pub struct DaemonConfig {
    /// The deployment's masking scheme.
    pub scheme: Scheme,
    /// EWMA weight for the volume history.
    pub history_alpha: f64,
    /// Shard count for the ingest fan-out.
    pub shards: usize,
    /// Worker threads for O–D matrix queries (the pool fan-out).
    pub od_threads: usize,
    /// Per-connection DoS budgets.
    pub limits: ConnectionLimits,
    /// When set, state is write-ahead logged here via [`DurableServer`]
    /// (recovering whatever the directory already holds).
    pub wal_dir: Option<PathBuf>,
    /// Durability knobs used when `wal_dir` is set.
    pub durable_options: DurableOptions,
    /// `true` forces the owned decode path (materialize every upload);
    /// `false` (default) ingests through the zero-copy borrowed views.
    /// Exists so the loopback bench can price the difference.
    pub owned_ingest: bool,
    /// Observability handle shared by the listener and all connections.
    pub obs: Obs,
}

impl DaemonConfig {
    /// A config with library defaults: 4 shards, default limits,
    /// volatile state, zero-copy ingest.
    #[must_use]
    pub fn new(scheme: Scheme) -> Self {
        Self {
            scheme,
            history_alpha: 1.0,
            shards: 4,
            od_threads: 0,
            limits: ConnectionLimits::default(),
            wal_dir: None,
            durable_options: DurableOptions::log_only(),
            owned_ingest: false,
            obs: Obs::disabled(),
        }
    }
}

/// The daemon's shared server state: one deployment, any backing.
enum Backend {
    /// In-memory only — state dies with the process.
    Volatile(ShardedServer),
    /// Write-ahead logged and checkpointed.
    Durable(DurableServer),
}

impl Backend {
    fn server(&self) -> &ShardedServer {
        match self {
            Backend::Volatile(s) => s,
            Backend::Durable(d) => d.server(),
        }
    }
}

struct Shared {
    backend: RwLock<Backend>,
    limits: ConnectionLimits,
    od_threads: usize,
    owned_ingest: bool,
    obs: Obs,
    shutdown: AtomicBool,
    live_conns: AtomicUsize,
    local_addr: SocketAddr,
}

/// A bound, not-yet-running daemon.
pub struct Daemon {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// A daemon running on its own thread (see [`Daemon::spawn`]).
pub struct DaemonHandle {
    addr: SocketAddr,
    thread: std::thread::JoinHandle<Result<(), NetError>>,
}

impl DaemonHandle {
    /// The daemon's bound address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the daemon to exit (after a shutdown frame).
    ///
    /// # Errors
    ///
    /// Whatever the run loop returned.
    ///
    /// # Panics
    ///
    /// Panics if the daemon thread panicked.
    pub fn join(self) -> Result<(), NetError> {
        self.thread.join().expect("daemon thread panicked")
    }
}

impl Daemon {
    /// Binds the listener and builds the backend (recovering from
    /// `wal_dir` when durable).
    ///
    /// # Errors
    ///
    /// Bind failures, invalid deployment parameters, or a corrupt
    /// durable store.
    pub fn bind(addr: impl ToSocketAddrs, config: DaemonConfig) -> Result<Self, NetError> {
        let listener = TcpListener::bind(addr).map_err(NetError::Io)?;
        let local_addr = listener.local_addr().map_err(NetError::Io)?;
        let backend = match &config.wal_dir {
            Some(dir) => {
                let (server, report) = DurableServer::recover(
                    config.scheme.clone(),
                    config.history_alpha,
                    config.shards,
                    dir,
                    config.durable_options,
                    &config.obs,
                )
                .map_err(NetError::from)?;
                config.obs.add(
                    "net.recover.records",
                    report.checkpoint_records + report.replayed_records,
                );
                Backend::Durable(server)
            }
            None => Backend::Volatile(
                ShardedServer::new(config.scheme.clone(), config.history_alpha, config.shards)
                    .map_err(NetError::from)?
                    .with_obs(config.obs.clone()),
            ),
        };
        Ok(Self {
            listener,
            shared: Arc::new(Shared {
                backend: RwLock::new(backend),
                limits: config.limits,
                od_threads: if config.od_threads == 0 {
                    4
                } else {
                    config.od_threads
                },
                owned_ingest: config.owned_ingest,
                obs: config.obs,
                shutdown: AtomicBool::new(false),
                live_conns: AtomicUsize::new(0),
                local_addr,
            }),
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Runs the accept loop until a shutdown frame arrives, then drains
    /// connections and flushes the WAL. Blocking; see
    /// [`spawn`](Self::spawn) for the threaded form.
    ///
    /// # Errors
    ///
    /// Accept-loop I/O failures and WAL flush failures at shutdown.
    pub fn run(self) -> Result<(), NetError> {
        let Self { listener, shared } = self;
        let mut workers = Vec::new();
        for stream in listener.incoming() {
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(e) => {
                    shared.obs.inc("net.accept.error");
                    let _ = e;
                    continue;
                }
            };
            if shared.live_conns.load(Ordering::SeqCst) >= shared.limits.max_connections {
                shared.obs.inc("net.conn.rejected");
                let mut s = stream;
                let _ = wire::write_frame(
                    &mut s,
                    &wire::encode_error_response("connection budget exhausted"),
                );
                continue;
            }
            shared.live_conns.fetch_add(1, Ordering::SeqCst);
            shared.obs.inc("net.conn.accepted");
            let shared = Arc::clone(&shared);
            workers.push(std::thread::spawn(move || {
                serve_connection(stream, &shared);
                shared.live_conns.fetch_sub(1, Ordering::SeqCst);
                shared.obs.inc("net.conn.closed");
            }));
        }
        drop(listener);
        for w in workers {
            let _ = w.join();
        }
        // The explicit shutdown flush: an orderly exit must never
        // abandon a buffered group-commit tail.
        if let Backend::Durable(d) = &mut *shared.backend.write().expect("backend poisoned") {
            d.flush_wal().map_err(NetError::from)?;
        }
        shared.obs.inc("net.shutdown");
        Ok(())
    }

    /// Runs the daemon on a background thread, returning its address
    /// and a join handle — the shape the tests and the loopback bench
    /// use.
    #[must_use]
    pub fn spawn(self) -> DaemonHandle {
        let addr = self.local_addr();
        let thread = std::thread::spawn(move || self.run());
        DaemonHandle { addr, thread }
    }
}

/// Reader-side loop: framing + budgets. Frames flow to the processor
/// through the bounded channel; the terminal error (if any) follows
/// them so the processor can report it before tearing down.
fn serve_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(IDLE_TICK));
    let _ = stream.set_write_timeout(Some(shared.limits.read_timeout));
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (tx, rx) =
        mpsc::sync_channel::<Result<Vec<u8>, NetError>>(shared.limits.max_frames_in_flight.max(1));
    let processor = {
        let shared = Arc::clone(shared);
        std::thread::spawn(move || process_frames(&rx, write_half, &shared))
    };

    let mut reader = stream;
    let mut bucket = shared.limits.max_bytes_per_sec.map(TokenBucket::new);
    loop {
        match read_frame_budgeted(&mut reader, shared) {
            Ok(Some(frame)) => {
                shared.obs.inc("net.frames.in");
                shared.obs.add("net.bytes.in", frame.len() as u64 + 4);
                if let Some(bucket) = bucket.as_mut() {
                    let slept = bucket.take(frame.len() as u64 + 4);
                    if slept > Duration::ZERO {
                        shared.obs.inc("net.throttle.sleeps");
                        shared
                            .obs
                            .add("net.throttle.slept_ms", slept.as_millis() as u64);
                    }
                }
                if tx.send(Ok(frame)).is_err() {
                    break; // processor gone (write failure): stop reading
                }
            }
            Ok(None) => break, // clean EOF or shutdown while idle
            Err(e) => {
                shared.obs.inc("net.frames.err");
                let _ = tx.send(Err(e));
                break;
            }
        }
    }
    drop(tx);
    let _ = processor.join();
}

/// Reads one frame under the connection's budgets.
///
/// Returns `Ok(None)` on a clean close (EOF between frames) or when
/// shutdown is flagged while the connection is idle. Idle time between
/// frames is unlimited; once the first prefix byte arrives, every
/// subsequent read must progress within `read_timeout` (the slow-loris
/// guard), including the payload.
fn read_frame_budgeted(
    stream: &mut TcpStream,
    shared: &Shared,
) -> Result<Option<Vec<u8>>, NetError> {
    let mut prefix = [0u8; 4];
    if !read_exact_budgeted(stream, &mut prefix, shared, true)? {
        return Ok(None);
    }
    let len = u64::from(u32::from_be_bytes(prefix));
    if len == 0 {
        return Err(NetError::Malformed("zero-length frame"));
    }
    if len > shared.limits.max_frame_bytes {
        return Err(NetError::FrameTooLarge {
            claimed: len,
            limit: shared.limits.max_frame_bytes,
        });
    }
    let mut payload = vec![0u8; len as usize];
    if !read_exact_budgeted(stream, &mut payload, shared, false)? {
        return Err(NetError::UnexpectedEof);
    }
    Ok(Some(payload))
}

/// `read_exact` over a socket whose read timeout is the short
/// [`IDLE_TICK`]: ticks while empty-and-idle are allowed (checking the
/// shutdown flag), ticks after the first byte count against the
/// connection's `read_timeout`.
///
/// Returns `Ok(false)` for a clean stop before the first byte (EOF or
/// shutdown) — only possible when `idle_ok`.
fn read_exact_budgeted(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shared: &Shared,
    idle_ok: bool,
) -> Result<bool, NetError> {
    let mut filled = 0usize;
    let mut last_progress = Instant::now();
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 && idle_ok {
                    return Ok(false);
                }
                return Err(NetError::UnexpectedEof);
            }
            Ok(n) => {
                filled += n;
                last_progress = Instant::now();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if filled == 0 && idle_ok {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        return Ok(false);
                    }
                    last_progress = Instant::now();
                } else if last_progress.elapsed() >= shared.limits.read_timeout {
                    return Err(NetError::Timeout);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(NetError::Io(e)),
        }
    }
    Ok(true)
}

/// Processor-side loop: decode, dispatch, respond. A malformed
/// *payload* (bad inner tag, bad upload) gets an error response and the
/// connection lives on — the framing layer is still in sync. A framing
/// error is terminal: best-effort error frame, then teardown.
fn process_frames(
    rx: &mpsc::Receiver<Result<Vec<u8>, NetError>>,
    mut out: TcpStream,
    shared: &Arc<Shared>,
) {
    for item in rx {
        match item {
            Ok(frame) => {
                let response = handle_frame(&frame, shared);
                shared.obs.add("net.bytes.out", response.len() as u64 + 4);
                if wire::write_frame(&mut out, &response).is_err() {
                    break;
                }
            }
            Err(e) => {
                let _ = wire::write_frame(&mut out, &wire::encode_error_response(&e.to_string()));
                break;
            }
        }
    }
    let _ = out.flush();
}

/// Dispatches one well-framed payload and builds its response.
fn handle_frame(payload: &[u8], shared: &Arc<Shared>) -> Vec<u8> {
    match dispatch(payload, shared) {
        Ok(response) => response,
        Err(e) => {
            shared.obs.inc("net.frames.err");
            wire::encode_error_response(&e.to_string())
        }
    }
}

fn dispatch(payload: &[u8], shared: &Arc<Shared>) -> Result<Vec<u8>, NetError> {
    let tag = *payload
        .first()
        .ok_or(NetError::Malformed("empty payload"))?;
    match tag {
        3..=6 => {
            let outcomes = {
                let mut backend = shared.backend.write().expect("backend poisoned");
                ingest(&mut backend, tag, payload, shared.owned_ingest)?
            };
            Ok(AckSummary::from_outcomes(&outcomes).encode())
        }
        REQ_PAIR_QUERY => {
            let mut cur = Cursor::new(&payload[1..]);
            let (a, b) = (cur.u64()?, cur.u64()?);
            cur.finish()?;
            let backend = shared.backend.read().expect("backend poisoned");
            let estimate = backend
                .server()
                .estimate_or_degraded(vcps_core::RsuId(a), vcps_core::RsuId(b))
                .map_err(NetError::from)?;
            Ok(wire::encode_estimate_response(&estimate))
        }
        REQ_OD_QUERY => {
            let mut cur = Cursor::new(&payload[1..]);
            let threads = cur.u64()?;
            cur.finish()?;
            let threads = if threads == 0 {
                shared.od_threads
            } else {
                usize::try_from(threads).unwrap_or(shared.od_threads)
            };
            let backend = shared.backend.read().expect("backend poisoned");
            let matrix = backend
                .server()
                .od_matrix_threads(threads)
                .map_err(NetError::from)?;
            Ok(wire::encode_matrix_response(&matrix))
        }
        REQ_FINISH_PERIOD => {
            if payload.len() != 1 {
                return Err(NetError::Malformed("trailing bytes in payload"));
            }
            let mut backend = shared.backend.write().expect("backend poisoned");
            let sizes = match &mut *backend {
                Backend::Volatile(s) => s.finish_period().map_err(NetError::from)?,
                Backend::Durable(d) => d.finish_period().map_err(NetError::from)?,
            };
            let sizes: Vec<(u64, u64)> = sizes
                .into_iter()
                .map(|(rsu, m)| (rsu.0, m as u64))
                .collect();
            Ok(wire::encode_sizes_response(&sizes))
        }
        REQ_SHUTDOWN => {
            if payload.len() != 1 {
                return Err(NetError::Malformed("trailing bytes in payload"));
            }
            shared.shutdown.store(true, Ordering::SeqCst);
            // Poke the accept loop awake so it can notice the flag.
            let _ = TcpStream::connect(shared.local_addr);
            Ok(vec![RESP_OK])
        }
        REQ_PING => {
            if payload.len() != 1 {
                return Err(NetError::Malformed("trailing bytes in payload"));
            }
            Ok(vec![RESP_OK])
        }
        1 | 2 | 7 | 8 => Err(NetError::Malformed(
            "frame not addressed to the server (vehicle/storage tag)",
        )),
        other => Err(NetError::UnknownTag(other)),
    }
}

/// Routes an upload frame (tags 3–6) into the backend, honoring the
/// owned-vs-borrowed path selection.
fn ingest(
    backend: &mut Backend,
    tag: u8,
    payload: &[u8],
    owned: bool,
) -> Result<Vec<vcps_sim::ReceiveOutcome>, NetError> {
    let outcomes = match (backend, tag) {
        (Backend::Volatile(s), 3 | 4) => {
            // Bare uploads have no borrowed ingest entry point; they are
            // the legacy single-frame path and always materialize.
            vec![s.receive(PeriodUpload::decode(payload).map_err(sim_err)?)]
        }
        (Backend::Volatile(s), 5) => {
            if owned {
                vec![s.receive_sequenced(SequencedUpload::decode(payload).map_err(sim_err)?)]
            } else {
                let view = SequencedUploadRef::decode_ref(payload).map_err(sim_err)?;
                vec![s.receive_sequenced_ref(&view)]
            }
        }
        (Backend::Volatile(s), _) => {
            if owned {
                s.receive_batch(BatchUpload::decode(payload).map_err(sim_err)?)
            } else {
                s.receive_batch_wire(payload).map_err(sim_err)?
            }
        }
        (Backend::Durable(_), 3 | 4) => {
            return Err(NetError::Malformed(
                "durable mode requires sequenced uploads (tags 5 or 6)",
            ));
        }
        (Backend::Durable(d), 5) => {
            // The WAL logs sequenced frames whole; the owned/borrowed
            // split only exists downstream of the log.
            vec![d
                .receive_sequenced(SequencedUpload::decode(payload).map_err(sim_err)?)
                .map_err(sim_err)?]
        }
        (Backend::Durable(d), _) => {
            if owned {
                d.receive_batch(BatchUpload::decode(payload).map_err(sim_err)?)
                    .map_err(sim_err)?
            } else {
                d.receive_batch_wire(payload).map_err(sim_err)?
            }
        }
    };
    Ok(outcomes)
}

fn sim_err(e: SimError) -> NetError {
    NetError::from(e)
}
