//! `vcpsd` — the VCPS measurement server as a TCP daemon.
//!
//! Stands up a [`Daemon`] on `--addr` and serves the wire protocol
//! until a shutdown frame arrives: upload frames (tags 3–6) feed the
//! sharded server through the zero-copy decode path, pair/O–D query
//! frames answer from the same state, and `--wal-dir` makes the whole
//! thing durable (recovering whatever the directory already holds, and
//! flushing the WAL on orderly shutdown).
//!
//! ```text
//! cargo run --release -p vcps-net --bin vcpsd --
//!   [--addr HOST:PORT]        listen address (default 127.0.0.1:0)
//!   [--port-file FILE]        write the bound address here (for CI
//!                             with an ephemeral port)
//!   [--s N]                   scheme parameter s (default 2)
//!   [--load-factor F]         variable-sizing load factor (default 3.0)
//!   [--seed N]                scheme seed (default 41)
//!   [--alpha F]               history EWMA weight (default 1.0)
//!   [--shards N]              ingest shards (default 4)
//!   [--od-threads N]          O–D query workers (default 4)
//!   [--wal-dir DIR]           durable mode: WAL + checkpoints here
//!   [--checkpoint-every N]    (durable) checkpoint interval in frames
//!   [--flush-every N]         (durable) group-commit every N records
//!                             (default: fsync per record)
//!   [--owned-ingest]          force the owned decode path (bench foil;
//!                             default is zero-copy borrowed)
//!   [--max-frame-bytes N]     frame cap, checked before allocation
//!   [--max-frames-in-flight N] per-connection pipeline depth
//!   [--max-bytes-per-sec N]   per-connection ingest budget
//!   [--read-timeout-ms N]     slow-loris progress window (default 10000)
//!   [--max-connections N]     concurrent connection budget
//!   [--obs]                   print an observability snapshot at exit
//! ```

use std::time::Duration;

use vcps_core::Scheme;
use vcps_net::{ConnectionLimits, Daemon, DaemonConfig};
use vcps_obs::{Level, Obs};
use vcps_sim::{DurableOptions, FlushPolicy};

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn arg_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn parsed<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    arg_value(args, flag)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let addr = arg_value(&args, "--addr").unwrap_or_else(|| "127.0.0.1:0".to_string());
    let s: usize = parsed(&args, "--s", 2);
    let load_factor: f64 = parsed(&args, "--load-factor", 3.0);
    let seed: u64 = parsed(&args, "--seed", 41);
    let scheme = Scheme::variable(s, load_factor, seed).expect("valid scheme parameters");

    let want_obs = arg_flag(&args, "--obs");
    let obs = if want_obs {
        Obs::enabled(Level::Info)
    } else {
        Obs::disabled()
    };

    let mut config = DaemonConfig::new(scheme);
    config.history_alpha = parsed(&args, "--alpha", 1.0);
    config.shards = parsed(&args, "--shards", 4);
    config.od_threads = parsed(&args, "--od-threads", 4);
    config.owned_ingest = arg_flag(&args, "--owned-ingest");
    config.obs = obs.clone();
    config.limits = ConnectionLimits {
        max_frame_bytes: parsed(&args, "--max-frame-bytes", 64 << 20),
        max_frames_in_flight: parsed(&args, "--max-frames-in-flight", 64),
        max_bytes_per_sec: arg_value(&args, "--max-bytes-per-sec").and_then(|v| v.parse().ok()),
        read_timeout: Duration::from_millis(parsed(&args, "--read-timeout-ms", 10_000)),
        max_connections: parsed(&args, "--max-connections", 64),
    };
    if let Some(dir) = arg_value(&args, "--wal-dir") {
        config.wal_dir = Some(dir.into());
        let mut options = DurableOptions::log_only();
        if let Some(every) = arg_value(&args, "--checkpoint-every").and_then(|v| v.parse().ok()) {
            options = options.with_checkpoint_every(every);
        }
        if let Some(records) = arg_value(&args, "--flush-every").and_then(|v| v.parse().ok()) {
            options = options.with_flush(FlushPolicy::EveryRecords(records));
        }
        config.durable_options = options;
    }

    let daemon = Daemon::bind(addr.as_str(), config).expect("bind daemon");
    let bound = daemon.local_addr();
    if let Some(path) = arg_value(&args, "--port-file") {
        std::fs::write(&path, bound.to_string()).expect("write --port-file");
    }
    eprintln!("vcpsd listening on {bound}");

    daemon.run().expect("daemon run loop failed");
    eprintln!("vcpsd: orderly shutdown complete");
    if want_obs {
        let snap = obs.snapshot();
        for (name, value) in &snap.counters {
            eprintln!("  {name} = {value}");
        }
    }
}
