//! `vcps-load` — loopback load generator and bench harness for `vcpsd`.
//!
//! Replays a synthetic city's upload frames against a daemon over one
//! or more TCP connections, measures uploads/s through the pipelined
//! ingest path, and (optionally) proves the daemon's answers are
//! bit-identical to an in-process `ShardedServer` fed the same wire
//! bytes.
//!
//! Two modes:
//!
//! * client mode (default): replay against an already-running daemon.
//!
//! ```text
//! cargo run --release -p vcps-net --bin vcps-load --
//!   --addr HOST:PORT          daemon address (required)
//!   [--connections N]         parallel replay streams (default 1)
//!   [--periods N]             batch frames per stream (default 32)
//!   [--rsus N]                city size (default 6)
//!   [--vehicles N]            city population (default 20000)
//!   [--city-seed N]           city RNG seed (default 17)
//!   [--s N] [--load-factor F] [--seed N]
//!                             scheme parameters — MUST match the
//!                             daemon's (default 2 / 3.0 / 41)
//!   [--expect-bit-identical]  compare the daemon's O-D matrix and a
//!                             pair query against a local reference;
//!                             exit non-zero on any bit drift
//!   [--shutdown]              send a shutdown frame when done
//! ```
//!
//! * bench mode (`--bench`): spawn an in-process daemon per
//!   configuration — connections 1/2/4 crossed with the owned vs
//!   zero-copy borrowed ingest path — and write the rows to
//!   `--out` (default BENCH_net.json). Every row carries its own
//!   bit-identity verdict; the CI gate refuses a file with any `false`.

use std::net::SocketAddr;
use std::time::Instant;

use vcps_core::{RsuId, Scheme};
use vcps_net::wire::estimate_bits;
use vcps_net::workload::{city_replay_frames, reference_order};
use vcps_net::{Daemon, DaemonConfig, NetClient, WireMatrix};
use vcps_sim::synthetic::SyntheticCity;
use vcps_sim::{OdMatrix, ShardedServer};

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn arg_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn parsed<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    arg_value(args, flag)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The fixed visit-probability table, cycled to the requested city
/// size so every run of the same shape replays identical traffic.
const PROB_TABLE: [f64; 6] = [0.3, 0.5, 0.2, 0.4, 0.6, 0.1];

fn visit_probs(rsus: usize) -> Vec<f64> {
    (0..rsus)
        .map(|j| PROB_TABLE[j % PROB_TABLE.len()])
        .collect()
}

struct Workload {
    scheme: Scheme,
    city: SyntheticCity,
    periods: u64,
    rsus: usize,
    vehicles: u64,
}

impl Workload {
    fn from_args(args: &[String]) -> Self {
        let s: usize = parsed(args, "--s", 2);
        let load_factor: f64 = parsed(args, "--load-factor", 3.0);
        let seed: u64 = parsed(args, "--seed", 41);
        let rsus: usize = parsed(args, "--rsus", 6);
        let vehicles: u64 = parsed(args, "--vehicles", 20_000);
        Workload {
            scheme: Scheme::variable(s, load_factor, seed).expect("valid scheme parameters"),
            city: SyntheticCity::generate(
                &visit_probs(rsus),
                vehicles,
                parsed(args, "--city-seed", 17),
            ),
            periods: parsed(args, "--periods", 32),
            rsus,
            vehicles,
        }
    }

    fn frames(&self, connections: usize) -> Vec<Vec<Vec<u8>>> {
        city_replay_frames(&self.scheme, &self.city, self.periods, connections)
    }

    /// The in-process server every daemon answer is checked against.
    fn reference(&self, frames: &[Vec<Vec<u8>>]) -> ShardedServer {
        let mut reference =
            ShardedServer::new(self.scheme.clone(), 1.0, 4).expect("reference server");
        for frame in reference_order(frames) {
            reference
                .receive_batch_wire(frame)
                .expect("reference replay");
        }
        reference
    }
}

struct RunStats {
    uploads: u64,
    wire_bytes: u64,
    elapsed_s: f64,
}

impl RunStats {
    fn uploads_per_sec(&self) -> f64 {
        self.uploads as f64 / self.elapsed_s
    }

    fn mib_per_sec(&self) -> f64 {
        self.wire_bytes as f64 / (1024.0 * 1024.0) / self.elapsed_s
    }
}

/// Replays each stream over its own connection, concurrently, and
/// times the whole fan-in (connect through last ack).
fn replay(addr: SocketAddr, frames_by_connection: Vec<Vec<Vec<u8>>>) -> RunStats {
    let wire_bytes: u64 = frames_by_connection
        .iter()
        .flatten()
        .map(|f| f.len() as u64 + 4)
        .sum();
    let started = Instant::now();
    let handles: Vec<_> = frames_by_connection
        .into_iter()
        .map(|stream| {
            std::thread::spawn(move || {
                let mut client = NetClient::connect(addr).expect("connect to daemon");
                client
                    .ingest_pipelined(&stream)
                    .expect("replay stream")
                    .frames
            })
        })
        .collect();
    let uploads = handles
        .into_iter()
        .map(|h| h.join().expect("replay thread"))
        .sum();
    RunStats {
        uploads,
        wire_bytes,
        elapsed_s: started.elapsed().as_secs_f64(),
    }
}

fn matrices_bit_identical(wire: &WireMatrix, local: &OdMatrix) -> bool {
    let local_rsus: Vec<u64> = local.rsus().iter().map(|r| r.0).collect();
    if wire.rsus != local_rsus {
        return false;
    }
    let n = local_rsus.len();
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let same = match (wire.at(i, j), local.at(i, j)) {
                (Some(remote), Some(expected)) => estimate_bits(&remote) == estimate_bits(expected),
                (None, None) => true,
                _ => false,
            };
            if !same {
                eprintln!("vcps-load: pair ({i}, {j}) diverged from the reference");
                return false;
            }
        }
    }
    true
}

/// Queries the daemon's full O-D matrix plus one pair and compares both
/// against the local reference, bit for bit.
fn check_bit_identical(addr: SocketAddr, reference: &ShardedServer) -> bool {
    let mut client = NetClient::connect(addr).expect("connect for verification");
    let remote_matrix = client.od_query(2).expect("od query");
    let local_matrix = reference.od_matrix_threads(2).expect("local od matrix");
    if !matrices_bit_identical(&remote_matrix, &local_matrix) {
        return false;
    }
    let remote_pair = client.pair_query(1, 2).expect("pair query");
    let local_pair = reference
        .estimate_or_degraded(RsuId(1), RsuId(2))
        .expect("local pair");
    if estimate_bits(&remote_pair) != estimate_bits(&local_pair) {
        eprintln!("vcps-load: pair query (1, 2) diverged from the reference");
        return false;
    }
    true
}

fn row_json(
    connections: usize,
    path: &str,
    stats: &RunStats,
    bit_identical: Option<bool>,
) -> String {
    let verdict = match bit_identical {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    };
    format!(
        concat!(
            "{{\"connections\": {}, \"path\": \"{}\", \"uploads\": {}, ",
            "\"wire_bytes\": {}, \"elapsed_ms\": {:.3}, ",
            "\"uploads_per_sec\": {:.1}, \"mib_per_sec\": {:.2}, ",
            "\"bit_identical\": {}}}"
        ),
        connections,
        path,
        stats.uploads,
        stats.wire_bytes,
        stats.elapsed_s * 1_000.0,
        stats.uploads_per_sec(),
        stats.mib_per_sec(),
        verdict,
    )
}

fn bench(args: &[String]) {
    let workload = Workload::from_args(args);
    let out = arg_value(args, "--out").unwrap_or_else(|| "BENCH_net.json".to_string());
    let mut rows = Vec::new();
    for connections in [1usize, 2, 4] {
        let frames = workload.frames(connections);
        let reference = workload.reference(&frames);
        for owned in [false, true] {
            let path = if owned { "owned" } else { "borrowed" };
            let mut config = DaemonConfig::new(workload.scheme.clone());
            config.owned_ingest = owned;
            let daemon = Daemon::bind("127.0.0.1:0", config).expect("bind bench daemon");
            let addr = daemon.local_addr();
            let handle = daemon.spawn();

            let stats = replay(addr, frames.clone());
            let bit_identical = check_bit_identical(addr, &reference);

            let mut client = NetClient::connect(addr).expect("connect for shutdown");
            client.shutdown().expect("shutdown bench daemon");
            handle.join().expect("bench daemon exit");

            eprintln!(
                "net_loopback_replay connections={connections} path={path} \
                 uploads/s={:.1} MiB/s={:.2} bit_identical={bit_identical}",
                stats.uploads_per_sec(),
                stats.mib_per_sec(),
            );
            rows.push(row_json(connections, path, &stats, Some(bit_identical)));
        }
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"net_loopback_replay\",\n",
            "  \"schema_version\": 1,\n",
            "  \"scheme\": {{\"s\": {}, \"load_factor\": {}, \"seed\": {}}},\n",
            "  \"city\": {{\"rsus\": {}, \"vehicles\": {}, \"periods\": {}}},\n",
            "  \"rows\": [\n    {}\n  ]\n",
            "}}\n"
        ),
        parsed::<usize>(args, "--s", 2),
        parsed::<f64>(args, "--load-factor", 3.0),
        parsed::<u64>(args, "--seed", 41),
        workload.rsus,
        workload.vehicles,
        workload.periods,
        rows.join(",\n    "),
    );
    std::fs::write(&out, &json).expect("write bench output");
    print!("{json}");
    eprintln!("vcps-load: wrote {out}");
}

fn client_mode(args: &[String]) {
    let Some(addr) = arg_value(args, "--addr") else {
        eprintln!(
            "vcps-load: --addr HOST:PORT is required (or use --bench); \
             see the usage header in crates/net/src/bin/vcps_load.rs"
        );
        std::process::exit(2);
    };
    let addr: SocketAddr = addr.parse().expect("parse --addr");
    let connections: usize = parsed(args, "--connections", 1);
    let workload = Workload::from_args(args);
    let frames = workload.frames(connections);

    let reference = if arg_flag(args, "--expect-bit-identical") {
        Some(workload.reference(&frames))
    } else {
        None
    };

    let stats = replay(addr, frames);
    let bit_identical = reference.as_ref().map(|r| check_bit_identical(addr, r));

    if arg_flag(args, "--shutdown") {
        let mut client = NetClient::connect(addr).expect("connect for shutdown");
        client.shutdown().expect("send shutdown frame");
    }

    println!("{}", row_json(connections, "replay", &stats, bit_identical));
    if bit_identical == Some(false) {
        eprintln!("vcps-load: daemon answers diverged from the in-process reference");
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if arg_flag(&args, "--bench") {
        bench(&args);
    } else {
        client_mode(&args);
    }
}
