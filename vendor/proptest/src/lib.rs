//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`,
//! [`strategy::Strategy`] with `prop_map`, `any::<T>()`, range strategies
//! for integers and floats, tuple strategies, and
//! [`collection::vec`]. Unlike upstream there is no shrinking: a failing
//! case panics with the case index so it can be replayed (generation is
//! deterministic per test name and case index). See `vendor/README.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod test_runner {
    //! Config, error type, and the case-execution loop.

    use std::fmt;

    /// Per-test configuration (shim of `proptest::test_runner::ProptestConfig`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to execute.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Smaller than upstream's 256: the shim cannot shrink, so
            // cheap, replayable runs are preferred.
            Self::with_cases(64)
        }
    }

    /// A failed property within a test case.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Builds a failure carrying `message`.
        #[must_use]
        pub fn fail(message: String) -> Self {
            Self { message }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic 64-bit generator (splitmix64) used to drive
    /// strategies. Seeded from the test name and case index, so every
    /// case is reproducible without persisted state.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator for one case of one named test.
        #[must_use]
        pub fn for_case(test_name: &str, case: u64) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut hash = 0xCBF2_9CE4_8422_2325u64;
            for byte in test_name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self {
                state: hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// The next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform value in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// A uniform integer in `[0, span)` expressed over `u128` so
        /// full-width unsigned spans don't overflow.
        pub fn below(&mut self, span: u128) -> u128 {
            assert!(span > 0, "empty range");
            let wide = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
            wide % span
        }
    }

    /// Runs `config.cases` deterministic cases of `body`, panicking on
    /// the first failure with enough context to replay it.
    pub fn run_cases<F>(config: &ProptestConfig, test_name: &str, mut body: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        for case in 0..u64::from(config.cases) {
            let mut rng = TestRng::for_case(test_name, case);
            if let Err(err) = body(&mut rng) {
                panic!("proptest `{test_name}` failed at case {case}: {err}");
            }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use std::ops::{Range, RangeInclusive};

    use crate::arbitrary::Arbitrary;
    use crate::test_runner::TestRng;

    /// A recipe for generating random values (shim of
    /// `proptest::strategy::Strategy`; no shrinking).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `map`.
        fn prop_map<U, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, map }
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        map: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn sample(&self, rng: &mut TestRng) -> U {
            (self.map)(self.inner.sample(rng))
        }
    }

    /// Strategy for the full value domain of `T`; see [`crate::any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Any<T> {
        pub(crate) fn new() -> Self {
            Self(std::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    (start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            let (start, end) = (*self.start(), *self.end());
            assert!(start <= end, "empty range");
            start + (end - start) * rng.unit_f64()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    //! Default value domains for primitive types.

    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy (shim of
    /// `proptest::arbitrary::Arbitrary`).
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() >> 63 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> Self {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use std::ops::{Range, RangeInclusive};

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An allowed size band for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self {
                min: exact,
                max_inclusive: exact,
            }
        }
    }

    /// Generates a `Vec` of `element`-strategy values with a length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_inclusive - self.size.min) as u128 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The full-domain strategy for `T` (shim of `proptest::arbitrary::any`).
#[must_use]
pub fn any<T: arbitrary::Arbitrary>() -> strategy::Any<T> {
    strategy::Any::new()
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace alias so `prop::collection::vec(..)` resolves.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Declares deterministic property tests (shim of `proptest::proptest!`).
///
/// Each declared function becomes a `#[test]` that runs the body for
/// every case with inputs drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$attr:meta])*
            fn $name:ident($($bind:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                $crate::test_runner::run_cases(&config, stringify!($name), |prop_rng| {
                    $(
                        let $bind =
                            $crate::strategy::Strategy::sample(&($strategy), prop_rng);
                    )+
                    let outcome: ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    outcome
                });
            }
        )*
    };
    (
        $(
            $(#[$attr:meta])*
            fn $name:ident($($bind:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$attr])*
                fn $name($($bind in $strategy),+) $body
            )*
        }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `left != right`\n  both: {:?}",
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left != right, $($fmt)+);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn doubled() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|v| v * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_are_in_bounds(x in 5usize..9, f in -2.0f64..2.0, i in 0u64..=3) {
            prop_assert!((5..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
            prop_assert!(i <= 3);
        }

        #[test]
        fn tuples_and_vecs_compose(
            (a, b) in (any::<u32>(), any::<bool>()),
            xs in prop::collection::vec((any::<u8>(), 1u64..4), 0..10),
        ) {
            let _ = (a, b);
            prop_assert!(xs.len() < 10);
            for (_, k) in xs {
                prop_assert!((1..4).contains(&k));
            }
        }

        #[test]
        fn prop_map_applies(v in doubled(), bytes in any::<[u8; 6]>()) {
            prop_assert_eq!(v % 2, 0);
            prop_assert_eq!(bytes.len(), 6);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = crate::collection::vec(0u64..100, 1..10);
        let a: Vec<Vec<u64>> = (0..5)
            .map(|case| strat.sample(&mut TestRng::for_case("d", case)))
            .collect();
        let b: Vec<Vec<u64>> = (0..5)
            .map(|case| strat.sample(&mut TestRng::for_case("d", case)))
            .collect();
        assert_eq!(a, b);
    }
}
