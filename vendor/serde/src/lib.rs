//! Offline stand-in for the `serde` façade.
//!
//! This workspace builds in environments without crates.io access, so the
//! external `serde` crate is replaced by this minimal shim (see
//! `vendor/README.md`). It defines just enough of the `Serialize` /
//! `Deserialize` trait surface for the workspace's `#[derive(...)]`
//! attributes to compile. No wire format ships with the workspace (the
//! protocol layer uses its own explicit encoding in `vcps-sim`), so the
//! generated impls are structural placeholders: swapping the real serde
//! back in requires only restoring the crates.io entry in the workspace
//! manifest.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A type that can be serialized (shim of `serde::Serialize`).
pub trait Serialize {
    /// Serializes `self` with the given serializer.
    ///
    /// # Errors
    ///
    /// Propagates the serializer's error type.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A serializer sink (shim of `serde::Serializer`).
///
/// The real trait has one entry point per data-model type; the shim keeps
/// a single placeholder method, which is all the derived impls call.
pub trait Serializer: Sized {
    /// Value returned on success.
    type Ok;
    /// Error type.
    type Error;

    /// Placeholder sink used by shim-derived [`Serialize`] impls.
    ///
    /// # Errors
    ///
    /// Implementation-defined.
    fn serialize_stub(self) -> Result<Self::Ok, Self::Error>;
}

/// A type that can be deserialized (shim of `serde::Deserialize`).
pub trait Deserialize<'de>: Sized {
    /// Deserializes a value from the given deserializer.
    ///
    /// # Errors
    ///
    /// Propagates the deserializer's error type.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A deserializer source (shim of `serde::Deserializer`).
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: de::Error;
}

/// Deserialization support types (shim of `serde::de`).
pub mod de {
    /// Errors produced during deserialization.
    pub trait Error: Sized {
        /// Builds the "unsupported by the offline shim" error.
        fn unsupported() -> Self;
    }
}
