//! Offline stand-in for `serde_derive`.
//!
//! Emits placeholder `Serialize` / `Deserialize` impls that satisfy the
//! shim traits in `vendor/serde`. Only plain (non-generic) structs and
//! enums are supported — which covers every derived type in this
//! workspace. See `vendor/README.md` for the rationale.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name following the `struct`/`enum` keyword,
/// skipping attributes and visibility qualifiers.
fn type_name(input: &TokenStream) -> String {
    let mut tokens = input.clone().into_iter().peekable();
    while let Some(token) = tokens.next() {
        match token {
            // `#[...]` attribute: skip the bracket group that follows.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                tokens.next();
            }
            TokenTree::Ident(ident) => {
                let word = ident.to_string();
                if word == "struct" || word == "enum" {
                    if let Some(TokenTree::Ident(name)) = tokens.next() {
                        return name.to_string();
                    }
                    panic!("serde_derive shim: missing type name after `{word}`");
                }
                // `pub`, `pub(crate)`, doc idents, etc.: keep scanning.
            }
            _ => {}
        }
    }
    panic!("serde_derive shim: no struct/enum found in derive input");
}

/// Shim derive for `serde::Serialize` (placeholder impl).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input);
    format!(
        "impl ::serde::Serialize for {name} {{\
             fn serialize<S: ::serde::Serializer>(&self, serializer: S)\
                 -> ::core::result::Result<S::Ok, S::Error> {{\
                 serializer.serialize_stub()\
             }}\
         }}"
    )
    .parse()
    .expect("valid impl tokens")
}

/// Shim derive for `serde::Deserialize` (placeholder impl).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input);
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\
             fn deserialize<D: ::serde::Deserializer<'de>>(_deserializer: D)\
                 -> ::core::result::Result<Self, D::Error> {{\
                 ::core::result::Result::Err(\
                     <D::Error as ::serde::de::Error>::unsupported())\
             }}\
         }}"
    )
    .parse()
    .expect("valid impl tokens")
}
