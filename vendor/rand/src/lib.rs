//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in environments without crates.io access, so the
//! external `rand` crate is replaced by this shim (see
//! `vendor/README.md`). It provides the exact API surface the workspace
//! uses — [`Rng`]/[`RngExt`] with `random`/`random_range`/`fill_bytes`,
//! [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`] — backed by
//! splitmix64 (Steele, Lea & Flood 2014), which is deterministic,
//! seedable, and statistically strong enough for the Monte-Carlo
//! workloads here. Streams differ from upstream `rand`'s ChaCha-based
//! `StdRng`, so seeded simulations produce different (but equally valid)
//! sample paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of randomness (shim of `rand::Rng`, 0.10 method names).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// A uniformly random value of `T`.
    fn random<T: FromRng>(&mut self) -> T {
        let mut next = || self.next_u64();
        T::from_rng(&mut next)
    }

    /// A uniformly random value in `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut next = || self.next_u64();
        range.sample_from(&mut next)
    }
}

/// Extension-trait alias kept for source compatibility with `rand` 0.10
/// call sites (`use rand::RngExt`). The shim folds everything into one
/// trait, so this is the same item under a second name.
pub use Rng as RngExt;

/// Types drawable uniformly from raw 64-bit outputs (shim of the
/// `StandardUniform` distribution).
pub trait FromRng: Sized {
    /// Draws a value given a 64-bit generator closure.
    fn from_rng(next: &mut dyn FnMut() -> u64) -> Self;
}

/// Ranges that can be sampled (shim of `rand::distr::uniform`).
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_from(self, next: &mut dyn FnMut() -> u64) -> T;
}

/// Seedable generators (shim of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The shim's standard generator: splitmix64.
    ///
    /// Deterministic per seed; distinct from upstream `rand`'s ChaCha12
    /// stream but uniform on 64-bit outputs.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub use rngs::StdRng;

impl FromRng for u64 {
    fn from_rng(next: &mut dyn FnMut() -> u64) -> Self {
        next()
    }
}

impl FromRng for u32 {
    fn from_rng(next: &mut dyn FnMut() -> u64) -> Self {
        (next() >> 32) as u32
    }
}

impl FromRng for bool {
    fn from_rng(next: &mut dyn FnMut() -> u64) -> Self {
        next() >> 63 == 1
    }
}

impl FromRng for f64 {
    fn from_rng(next: &mut dyn FnMut() -> u64) -> Self {
        unit_f64(next())
    }
}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u128;
                self.start + (next() as u128 % span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, next: &mut dyn FnMut() -> u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end - start) as u128 + 1;
                start + (next() as u128 % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, next: &mut dyn FnMut() -> u64) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * unit_f64(next())
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from(self, next: &mut dyn FnMut() -> u64) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range");
        start + (end - start) * unit_f64(next())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let v = rng.random_range(3u32..17);
            assert!((3..17).contains(&v));
            let f = rng.random_range(-2.0f64..5.0);
            assert!((-2.0..5.0).contains(&f));
            let i = rng.random_range(0usize..=4);
            assert!(i <= 4);
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1_000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            lo |= f < 0.25;
            hi |= f > 0.75;
        }
        assert!(lo && hi, "both tails reached");
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
