//! Offline stand-in for the `bytes` crate.
//!
//! Provides `Vec`-backed [`Bytes`] / [`BytesMut`] plus the [`Buf`] /
//! [`BufMut`] subset the workspace's wire codecs use (big-endian
//! integers, byte slices, in-place slice consumption). Semantics match
//! upstream for this subset; the zero-copy reference counting of the real
//! crate is irrelevant to the simulator's message volumes. See
//! `vendor/README.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Deref;

/// An immutable byte buffer (shim of `bytes::Bytes`).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Copies the contents into a fresh `Vec`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self(v)
    }
}

/// A growable byte buffer (shim of `bytes::BytesMut`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty buffer with at least `capacity` bytes reserved.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self(Vec::with_capacity(capacity))
    }

    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }

    /// Number of bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` when no bytes have been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Write access to a byte sink (shim of `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, value: u8) {
        self.put_slice(&[value]);
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, value: u32) {
        self.put_slice(&value.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, value: u64) {
        self.put_slice(&value.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read access to a byte source (shim of `bytes::Buf`).
///
/// # Panics
///
/// Like upstream, the `get_*`/`advance`/`copy_to_slice` methods panic
/// when the source holds too few bytes; decoders check lengths first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);

    /// Copies `dst.len()` bytes out and advances past them.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut raw = [0u8; 1];
        self.copy_to_slice(&mut raw);
        raw[0]
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_be_bytes(raw)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_be_bytes(raw)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        *self = &self[n..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "read past end of buffer");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u64_and_slice() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(7);
        buf.put_u64(0x0102_0304_0506_0708);
        buf.put_slice(&[9, 10]);
        let frozen = buf.freeze();
        let mut wire: &[u8] = &frozen;
        assert_eq!(wire.remaining(), 11);
        assert_eq!(wire.get_u8(), 7);
        assert_eq!(wire.get_u64(), 0x0102_0304_0506_0708);
        let mut tail = [0u8; 2];
        wire.copy_to_slice(&mut tail);
        assert_eq!(tail, [9, 10]);
        assert_eq!(wire.remaining(), 0);
    }

    #[test]
    fn advance_consumes_prefix() {
        let data = [1u8, 2, 3, 4];
        let mut wire: &[u8] = &data;
        wire.advance(2);
        assert_eq!(wire, &[3, 4]);
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn overread_panics() {
        let mut wire: &[u8] = &[1];
        let _ = wire.get_u64();
    }
}
