//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the registration surface the workspace's benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Throughput`],
//! [`criterion_group!`]/[`criterion_main!`] — but replaces the
//! statistical engine with a lightweight warm-up + fixed-budget timing
//! loop that prints one line per benchmark. Good enough to compare
//! implementations and smoke-test the benches in CI; not a substitute
//! for upstream's confidence intervals. See `vendor/README.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// Target wall-clock time spent measuring each benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(120);
/// Target wall-clock time spent warming up each benchmark.
const WARMUP_BUDGET: Duration = Duration::from_millis(30);

/// Top-level benchmark driver (shim of `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, None, &mut routine);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks (shim of `criterion::BenchmarkGroup`).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the shim sizes runs by time budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the shim keeps its fixed budget.
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Declares the work per iteration so rates are reported.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.throughput, &mut routine);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.throughput, &mut |b: &mut Bencher| {
            routine(b, input);
        });
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Names a benchmark within a group (shim of `criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A two-part id: `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// An id naming only the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Conversion accepted by the `bench_*` methods: a [`BenchmarkId`] or a
/// plain string.
pub trait IntoBenchmarkId {
    /// The rendered benchmark label.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Work performed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many abstract elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Mean nanoseconds per iteration, recorded by [`Bencher::iter`].
    nanos_per_iter: f64,
}

impl Bencher {
    /// Times `routine` until the measurement budget is spent.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP_BUDGET || warm_iters == 0 {
            std::hint::black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let est_nanos = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);

        // Measure in batches sized from the estimate.
        let batch = ((MEASURE_BUDGET.as_nanos() as f64 / 8.0 / est_nanos) as u64).clamp(1, 1 << 20);
        let mut best = f64::INFINITY;
        let measure_start = Instant::now();
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let per_iter = t.elapsed().as_nanos() as f64 / batch as f64;
            if per_iter < best {
                best = per_iter;
            }
            if measure_start.elapsed() >= MEASURE_BUDGET {
                break;
            }
        }
        self.nanos_per_iter = best;
    }
}

/// Runs one benchmark and prints a single summary line.
fn run_one<F>(label: &str, throughput: Option<Throughput>, routine: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher::default();
    routine(&mut bencher);
    let nanos = bencher.nanos_per_iter;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.3} Melem/s", n as f64 / nanos * 1e3)
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                "  {:>12.3} MiB/s",
                n as f64 * 1e9 / nanos / (1024.0 * 1024.0)
            )
        }
        None => String::new(),
    };
    println!(
        "bench {label:<56} {:>14} ns/iter{rate}",
        format_nanos(nanos)
    );
}

fn format_nanos(nanos: f64) -> String {
    if nanos >= 100.0 {
        format!("{nanos:.0}")
    } else {
        format!("{nanos:.2}")
    }
}

/// Declares a benchmark group function (shim of `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point (shim of `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("smoke/add", |b| b.iter(|| 2u64 + 2));
        let mut group = c.benchmark_group("smoke");
        group.sample_size(10);
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::from_parameter(4u64), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(smoke, sample_bench);

    #[test]
    fn harness_runs_and_times() {
        smoke();
    }
}
