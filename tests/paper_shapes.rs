//! The paper's headline experimental shapes, asserted end-to-end at
//! reduced scale. These are the claims EXPERIMENTS.md tracks:
//!
//! 1. both schemes coincide when `n_y = n_x` (Fig. 4/5, first plots);
//! 2. the baseline degrades as the traffic skew grows while the novel
//!    scheme stays accurate (Fig. 4/5, Table I);
//! 3. privacy is unimodal in the load factor with `f* ≈ 2–4` (Fig. 2);
//! 4. the fixed scheme's privacy collapses at high effective load
//!    factors (Fig. 2 / §VI-B);
//! 5. variable sizing *improves* privacy for skewed pairs (§VI-B);
//! 6. [9] is the `m_x = m_y` special case of the novel scheme (§VI-A).

use vcps::analysis::{accuracy, privacy, PairParams};
use vcps::sim::synthetic::SyntheticPair;
use vcps::{PairRunner, RsuId, Scheme};

fn mean_abs_error(scheme: &Scheme, n_x: u64, n_y: u64, n_c: u64, runs: u64) -> f64 {
    (0..runs)
        .map(|seed| {
            let workload = SyntheticPair::generate(n_x, n_y, n_c, seed);
            PairRunner::new(scheme.clone(), RsuId(1), RsuId(2))
                .run(&workload)
                .expect("run succeeds")
                .relative_error()
                .expect("n_c > 0")
        })
        .sum::<f64>()
        / runs as f64
}

#[test]
fn shape1_schemes_coincide_at_equal_traffic() {
    // With n_x = n_y and m chosen identically, novel == baseline up to
    // power-of-two rounding; both are accurate.
    let (n, n_c) = (5_000u64, 1_000u64);
    let novel = Scheme::variable(2, 6.0, 4).unwrap();
    let fixed = Scheme::fixed(2, 32_768, 4).unwrap(); // = 2^ceil(log2(6·5000))
    let e_novel = mean_abs_error(&novel, n, n, n_c, 6);
    let e_fixed = mean_abs_error(&fixed, n, n, n_c, 6);
    assert!(e_novel < 0.10, "novel err {e_novel}");
    assert!(e_fixed < 0.10, "fixed err {e_fixed}");
}

#[test]
fn shape2_baseline_degrades_with_skew_novel_does_not() {
    // m for the baseline sized by the light RSU (the §VI-B constraint);
    // the novel scheme re-sizes per RSU with the same nominal factor.
    let n_x = 4_000u64;
    let n_c = 800u64;
    let f = 6.0;
    let novel = Scheme::variable(2, f, 4).unwrap();
    let fixed = Scheme::fixed(2, (f * n_x as f64) as usize, 4).unwrap();
    let runs = 6;

    let novel_1x = mean_abs_error(&novel, n_x, n_x, n_c, runs);
    let novel_50x = mean_abs_error(&novel, n_x, 50 * n_x, n_c, runs);
    let fixed_1x = mean_abs_error(&fixed, n_x, n_x, n_c, runs);
    let fixed_50x = mean_abs_error(&fixed, n_x, 50 * n_x, n_c, runs);

    // At 50x skew the baseline's array drowns (load factor 0.12) while
    // the novel scheme holds its load factor.
    assert!(
        fixed_50x > 4.0 * fixed_1x,
        "baseline should degrade: {fixed_1x} -> {fixed_50x}"
    );
    assert!(
        fixed_50x > 3.0 * novel_50x,
        "novel ({novel_50x}) should beat baseline ({fixed_50x}) at 50x"
    );
    // In absolute terms the novel scheme remains a usable estimator at
    // 50x skew (its per-run sd grows with m_y, but stays bounded), while
    // the baseline's errors exceed 100% of the true value.
    assert!(
        novel_50x < 0.5,
        "novel stays usable at 50x: {novel_1x} -> {novel_50x}"
    );
    assert!(fixed_50x > 1.0, "baseline unusable at 50x: {fixed_50x}");
}

#[test]
fn shape3_privacy_peak_between_2_and_4() {
    for s in [2.0, 5.0, 10.0] {
        let peak = privacy::optimal_load_factor(10_000.0, 10_000.0, 0.1, s).unwrap();
        assert!(
            (1.5..=4.5).contains(&peak.load_factor),
            "s={s}: f* = {}",
            peak.load_factor
        );
    }
}

#[test]
fn shape4_fixed_scheme_privacy_collapses_at_high_load() {
    // §VI-B: a fixed m sized for a heavy RSU gives light RSUs an
    // effective load factor of 50, collapsing their privacy.
    let at_f = |f: f64| privacy::privacy_at_load_factor(f, 10_000.0, 10_000.0, 0.1, 2.0).unwrap();
    let optimal = privacy::optimal_load_factor(10_000.0, 10_000.0, 0.1, 2.0)
        .unwrap()
        .privacy;
    assert!(at_f(50.0) < 0.3, "collapsed privacy: {}", at_f(50.0));
    assert!(optimal > 0.5, "optimal privacy: {optimal}");
}

#[test]
fn shape5_skewed_pairs_gain_privacy_under_variable_sizing() {
    for s in [2.0, 5.0] {
        let equal = privacy::privacy_at_load_factor(3.0, 10_000.0, 10_000.0, 0.1, s).unwrap();
        let skew10 = privacy::privacy_at_load_factor(3.0, 10_000.0, 100_000.0, 0.1, s).unwrap();
        let skew50 = privacy::privacy_at_load_factor(3.0, 10_000.0, 500_000.0, 0.1, s).unwrap();
        assert!(skew10 > equal && skew50 > equal, "s={s}");
    }
}

#[test]
fn shape6_baseline_is_the_equal_size_special_case() {
    // Setting m_x = m_y in the privacy formula (Eq. 43) and the
    // estimator recovers [9]; verify the formulas agree through the
    // public API.
    let p_var = PairParams::new(1_000.0, 1_000.0, 100.0, 4_096.0, 4_096.0, 2.0).unwrap();
    let p_fixed = PairParams::fixed_size(4_096.0, 1_000.0, 1_000.0, 100.0, 2.0).unwrap();
    assert_eq!(
        privacy::preserved_privacy(&p_var),
        privacy::preserved_privacy(&p_fixed)
    );
    assert_eq!(accuracy::bias_ratio(&p_var), accuracy::bias_ratio(&p_fixed));
}

#[test]
fn paper_quoted_privacy_values_reproduce() {
    let spot = |f: f64, ratio: f64, s: f64| {
        privacy::privacy_at_load_factor(f, 10_000.0, ratio * 10_000.0, 0.1, s).unwrap()
    };
    assert!((spot(3.0, 1.0, 5.0) - 0.75).abs() < 0.02, "0.75 claim");
    assert!((spot(3.0, 10.0, 5.0) - 0.89).abs() < 0.02, "0.89 claim");
    assert!((spot(3.0, 50.0, 5.0) - 0.91).abs() < 0.03, "0.91 claim");
    assert!(
        (spot(50.0, 1.0, 2.0) - 0.2).abs() < 0.05,
        "0.2 collapse claim"
    );
}

#[test]
fn table1_shape_at_reduced_scale() {
    // Scaled-down Table I: novel beats baseline at every pair and the
    // baseline's error grows with d. (Full scale: `--bin table1`.)
    let rows = [(21_300u64, 4_000u64), (7_800, 800), (2_800, 300)];
    let n_y = 45_100u64;
    let novel = Scheme::variable(2, 6.5, 9).unwrap();
    let baseline = Scheme::fixed(2, 36_669, 9).unwrap();
    let runs = 10;
    let mut base_errs = Vec::new();
    let mut novel_errs = Vec::new();
    for &(n_x, n_c) in &rows {
        let e_novel = mean_abs_error(&novel, n_x, n_y, n_c, runs);
        let e_base = mean_abs_error(&baseline, n_x, n_y, n_c, runs);
        // Per row the novel scheme is at least competitive (ties are
        // within Monte-Carlo noise at this reduced scale)...
        assert!(
            e_novel < 1.25 * e_base,
            "novel ({e_novel}) should not lose to baseline ({e_base}) at n_x = {n_x}"
        );
        base_errs.push(e_base);
        novel_errs.push(e_novel);
    }
    // ...and wins clearly in aggregate.
    let base_mean: f64 = base_errs.iter().sum::<f64>() / base_errs.len() as f64;
    let novel_mean: f64 = novel_errs.iter().sum::<f64>() / novel_errs.len() as f64;
    assert!(
        novel_mean < 0.8 * base_mean,
        "aggregate: novel {novel_mean} vs baseline {base_mean}"
    );
    assert!(
        base_errs.last().unwrap() > base_errs.first().unwrap(),
        "baseline error grows with d: {base_errs:?}"
    );
}
