//! Reduced-scale differential conformance suite for the metropolis
//! continuous-estimation scenario (DESIGN.md §20).
//!
//! The metro driver's core contract extends the sharded server's
//! (`tests/sharded_differential.rs`) to *continuous multi-period*
//! operation: a metro run streamed through a [`ShardedServer`] as
//! batch-framed wire uploads must be bit-identical — sliding-window
//! matrices, array-size trajectories, exchange counts, fault metrics,
//! undelivered sets, final server state, and observability counters
//! (modulo the sharded server's own `shard.*` / `batch.*` series) — to
//! the same run through the monolithic [`CentralServer`], at every
//! shard count × worker count, under ideal channels and under seeded
//! fault injection.
//!
//! Alongside the differential, this suite pins the sliding window's
//! edge semantics: a window of one is exactly the single-period
//! estimate, an empty window is a typed error, and an RSU that crashes
//! mid-window degrades to its history-backed answer in exactly the
//! periods it missed.

use std::collections::BTreeMap;

use vcps::hash::splitmix64;
use vcps::obs::{Level, Obs};
use vcps::sim::engine::PeriodSettings;
use vcps::sim::protocol::{PeriodUpload, SequencedUpload};
use vcps::sim::{
    build_metro, run_metro_faulty_monolith_threads, run_metro_faulty_sharded_threads,
    run_metro_monolith_threads, run_metro_sharded_threads, CentralServer, FaultPlan, LinkFaults,
    MetroConfig, MetroWorkload, RetryPolicy, SimError, SlidingWindow,
};
use vcps::{BitArray, RsuId, Scheme};

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// Strips the sharded server's own progress series, leaving exactly the
/// counters the monolith also fires.
fn strip_shard_series(mut counters: BTreeMap<String, u64>) -> BTreeMap<String, u64> {
    counters.retain(|name, _| !name.starts_with("shard.") && !name.starts_with("batch."));
    counters
}

/// The reduced-scale metropolis: 64 RSUs (an 8×8 grid), three periods
/// of diurnally-scaled gravity demand — big enough that every shard
/// owns RSUs and arrays re-size between periods, small enough for the
/// test budget.
fn metro_fixture() -> (MetroWorkload, Scheme, PeriodSettings) {
    let workload = build_metro(&MetroConfig {
        rsus: 64,
        periods: 3,
        total_trips: 600.0,
        msa_iterations: 2,
        seed: 0xC17,
        ..MetroConfig::default()
    });
    let scheme = Scheme::variable(2, 3.0, 9).expect("valid scheme");
    let settings = PeriodSettings {
        seed: 0xC17,
        ..PeriodSettings::default()
    };
    (workload, scheme, settings)
}

fn all_pair_estimates<F, E>(nodes: u64, estimate: F) -> Vec<E>
where
    F: Fn(RsuId, RsuId) -> E,
{
    let mut out = Vec::new();
    for a in 0..nodes {
        for b in (a + 1)..nodes {
            out.push(estimate(RsuId(a), RsuId(b)));
        }
    }
    out
}

#[test]
fn metro_sharded_run_is_bit_identical_to_monolith() {
    let (workload, scheme, settings) = metro_fixture();
    let nodes = workload.net.node_count() as u64;
    let mono_obs = Obs::enabled(Level::Info);
    let mono = run_metro_monolith_threads(
        &scheme,
        &workload.net,
        &workload.net.free_flow_times(),
        &workload.periods,
        &workload.initial_history,
        &settings,
        2,
        1,
        &mono_obs,
    )
    .expect("monolithic metro run");
    let mono_counters = mono_obs.snapshot().counters;
    let mono_pairs = all_pair_estimates(nodes, |a, b| mono.server.estimate_or_degraded(a, b));

    for shards in SHARD_COUNTS {
        for threads in THREAD_COUNTS {
            let obs = Obs::enabled(Level::Info);
            let run = run_metro_sharded_threads(
                &scheme,
                &workload.net,
                &workload.net.free_flow_times(),
                &workload.periods,
                &workload.initial_history,
                &settings,
                shards,
                2,
                threads,
                &obs,
            )
            .expect("sharded metro run");
            assert_eq!(
                run.window, mono.window,
                "window matrices at {shards} shards x {threads} threads"
            );
            assert_eq!(
                run.sizes_per_period, mono.sizes_per_period,
                "array sizes at {shards} shards x {threads} threads"
            );
            assert_eq!(
                run.exchanges_per_period, mono.exchanges_per_period,
                "exchanges at {shards} shards x {threads} threads"
            );
            assert_eq!(
                run.uploads_delivered, mono.uploads_delivered,
                "uploads delivered at {shards} shards x {threads} threads"
            );
            assert_eq!(
                all_pair_estimates(nodes, |a, b| run.server.estimate_or_degraded(a, b)),
                mono_pairs,
                "post-run estimates at {shards} shards x {threads} threads"
            );
            assert_eq!(
                strip_shard_series(obs.snapshot().counters),
                mono_counters,
                "counters at {shards} shards x {threads} threads"
            );
        }
    }
}

#[test]
fn metro_faulty_sharded_run_is_bit_identical_to_monolith() {
    let (workload, scheme, settings) = metro_fixture();
    let nodes = workload.net.node_count() as u64;
    let plan = FaultPlan::new(0xC17 ^ 0xFA_17)
        .with_report_link(LinkFaults::none().with_drop(0.15).with_bit_flip(0.05))
        .with_upload_link(LinkFaults::none().with_drop(0.35).with_duplicate(0.1));
    let policy = RetryPolicy::default();
    let mono_obs = Obs::enabled(Level::Info);
    let mono = run_metro_faulty_monolith_threads(
        &scheme,
        &workload.net,
        &workload.net.free_flow_times(),
        &workload.periods,
        &workload.initial_history,
        &settings,
        &plan,
        &policy,
        2,
        1,
        &mono_obs,
    )
    .expect("monolithic faulty metro run");
    let mono_counters = mono_obs.snapshot().counters;
    let mono_pairs = all_pair_estimates(nodes, |a, b| mono.server.estimate_or_degraded(a, b));

    for shards in SHARD_COUNTS {
        for threads in THREAD_COUNTS {
            let obs = Obs::enabled(Level::Info);
            let run = run_metro_faulty_sharded_threads(
                &scheme,
                &workload.net,
                &workload.net.free_flow_times(),
                &workload.periods,
                &workload.initial_history,
                &settings,
                &plan,
                &policy,
                shards,
                2,
                threads,
                &obs,
            )
            .expect("sharded faulty metro run");
            assert_eq!(
                run.window, mono.window,
                "window matrices at {shards} shards x {threads} threads"
            );
            assert_eq!(
                run.faults_per_period, mono.faults_per_period,
                "fault metrics at {shards} shards x {threads} threads"
            );
            assert_eq!(
                run.undelivered_per_period, mono.undelivered_per_period,
                "undelivered sets at {shards} shards x {threads} threads"
            );
            assert_eq!(
                run.sizes_per_period, mono.sizes_per_period,
                "array sizes at {shards} shards x {threads} threads"
            );
            assert_eq!(
                run.exchanges_per_period, mono.exchanges_per_period,
                "exchanges at {shards} shards x {threads} threads"
            );
            assert_eq!(
                run.uploads_delivered, mono.uploads_delivered,
                "uploads delivered at {shards} shards x {threads} threads"
            );
            assert_eq!(
                all_pair_estimates(nodes, |a, b| run.server.estimate_or_degraded(a, b)),
                mono_pairs,
                "post-run estimates at {shards} shards x {threads} threads"
            );
            assert_eq!(
                strip_shard_series(obs.snapshot().counters),
                mono_counters,
                "counters at {shards} shards x {threads} threads"
            );
        }
    }
    // The fault rates are high enough that the differential actually
    // exercised the degraded path.
    let lost: usize = mono.undelivered_per_period.iter().map(Vec::len).sum();
    assert!(
        lost > 0,
        "expected some abandoned uploads at a 35% drop rate"
    );
}

// ---------------------------------------------------------------------------
// Sliding-window edge semantics.
// ---------------------------------------------------------------------------

/// A deterministic synthetic upload for one RSU, seed-varied fill.
fn synthetic_upload(rsu: u64, seed: u64) -> PeriodUpload {
    let h = splitmix64(seed ^ rsu);
    let m = 256;
    let ones = 20 + (h >> 8) % 60;
    let bits = BitArray::from_indices(
        m,
        (0..ones).map(|i| (splitmix64(h ^ i) % m as u64) as usize),
    )
    .expect("indices in range");
    PeriodUpload {
        rsu: RsuId(rsu),
        counter: bits.count_ones() as u64 + h % 5,
        bits,
    }
}

#[test]
fn empty_window_is_typed_error_never_nan() {
    let window = SlidingWindow::new(4);
    assert!(window.is_empty());
    assert_eq!(
        window.average(RsuId(1), RsuId(2)),
        Err(SimError::EmptyWindow)
    );
}

/// Drives three explicit periods through a [`CentralServer`], withholding
/// RSU 2's upload in period 1 (the "crash mid-window"), and checks that
/// the sliding window's per-period entries are *exactly* the
/// `estimate_or_degraded` answers captured live in each period: degraded
/// only in the crashed period for pairs involving the crashed RSU,
/// measured everywhere else, and recovered in the period after.
#[test]
fn crash_mid_window_degrades_exactly_as_estimate_or_degraded() {
    const RSUS: u64 = 5;
    const PERIODS: u64 = 3;
    const CRASHED: u64 = 2;
    let scheme = Scheme::variable(2, 3.0, 9).expect("valid scheme");
    let mut server = CentralServer::new(scheme, 0.5).expect("valid alpha");
    for r in 0..RSUS {
        server.seed_history(RsuId(r), 40.0);
    }
    server.finish_period().expect("seeded sizing");

    let mut window = SlidingWindow::new(PERIODS as usize);
    let mut live_answers = Vec::new();
    for p in 0..PERIODS {
        for r in 0..RSUS {
            if p == 1 && r == CRASHED {
                continue; // crashed: its upload never arrives this period
            }
            server.receive_sequenced(SequencedUpload {
                seq: p,
                upload: synthetic_upload(r, 0xBEEF ^ p),
            });
        }
        // The per-period ground truth for the window's contract: what
        // estimate_or_degraded answers *right now*, this period.
        live_answers.push(all_pair_estimates(RSUS, |a, b| {
            server.estimate_or_degraded(a, b).expect("total answer")
        }));
        window.push(server.od_matrix_threads(1).expect("matrix"));
        server.finish_period().expect("period close");
    }

    assert_eq!(window.len(), PERIODS as usize);
    for (p, matrix) in window.iter().enumerate() {
        let mut k = 0;
        for a in 0..RSUS {
            for b in (a + 1)..RSUS {
                let entry = matrix.get(RsuId(a), RsuId(b)).expect("covered pair");
                assert_eq!(
                    entry, &live_answers[p][k],
                    "window period {p} pair ({a},{b}) must equal the live per-period answer"
                );
                let crashed_pair = a == CRASHED || b == CRASHED;
                assert_eq!(
                    entry.is_degraded(),
                    p == 1 && crashed_pair,
                    "degradation must hit exactly the crashed RSU's pairs in the crashed period"
                );
                k += 1;
            }
        }
    }

    // The window aggregate reflects the partial degradation honestly.
    let other = (0..RSUS).find(|&r| r != CRASHED).expect("another RSU");
    let averaged = window
        .average(RsuId(CRASHED), RsuId(other))
        .expect("covered pair");
    assert_eq!(averaged.periods, PERIODS as usize);
    assert_eq!(averaged.degraded_periods, 1);
    assert!(!averaged.latest.is_degraded(), "latest period recovered");

    let clean = window.average(RsuId(other), RsuId(3)).expect("covered");
    assert_eq!(clean.degraded_periods, 0);
}

/// A window of capacity one, fed period by period, always answers with
/// exactly the newest single-period estimate.
#[test]
fn window_of_one_tracks_the_single_period_estimate() {
    const RSUS: u64 = 4;
    let scheme = Scheme::variable(2, 3.0, 9).expect("valid scheme");
    let mut server = CentralServer::new(scheme, 0.5).expect("valid alpha");
    for r in 0..RSUS {
        server.seed_history(RsuId(r), 30.0);
    }
    server.finish_period().expect("seeded sizing");

    let mut window = SlidingWindow::new(1);
    for p in 0..3u64 {
        for r in 0..RSUS {
            server.receive_sequenced(SequencedUpload {
                seq: p,
                upload: synthetic_upload(r, 0xF00D ^ p),
            });
        }
        let matrix = server.od_matrix_threads(1).expect("matrix");
        window.push(matrix.clone());
        assert_eq!(window.len(), 1, "capacity-one window never grows");
        for a in 0..RSUS {
            for b in (a + 1)..RSUS {
                let expected = matrix.get(RsuId(a), RsuId(b)).expect("covered");
                let got = window.average(RsuId(a), RsuId(b)).expect("covered");
                assert_eq!(got.n_c, expected.n_c());
                assert_eq!(got.latest, *expected);
                assert_eq!(got.periods, 1);
            }
        }
        server.finish_period().expect("period close");
    }
}
