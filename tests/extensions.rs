//! Integration tests for the extension features (DESIGN.md §8) through
//! the facade: sparse uploads, sketch merging, communication metrics,
//! multi-period runs, TNTP round-trips, and the analytical profile.

use vcps::analysis::{PairParams, Profile, Regime};
use vcps::bitarray::SparseBits;
use vcps::roadnet::{frank_wolfe, sioux_falls, tntp};
use vcps::sim::synthetic::SyntheticPair;
use vcps::{PairRunner, RsuId, RsuSketch, Scheme, VehicleIdentity};

#[test]
fn sparse_encoding_survives_the_full_decode_path() {
    // Sparse pays off when an array holds far fewer ones than its size
    // was provisioned for — here an RSU with heavy history (100k) sees a
    // quiet period (200 vehicles): 200 ones in a 2^19-bit array.
    let scheme = Scheme::variable(2, 3.0, 5).unwrap();
    let mut d = scheme
        .deploy(&[(RsuId(1), 100_000.0), (RsuId(2), 20_000.0)])
        .unwrap();
    for i in 0..200u64 {
        let v = VehicleIdentity::from_raw(i, i.wrapping_mul(0x9E37) | 1);
        d.record(&v, RsuId(1)).unwrap();
        d.record(&v, RsuId(2)).unwrap();
    }
    let original = d.sketch(RsuId(1)).unwrap();
    let encoded = SparseBits::encode(original.bits());
    assert!(matches!(encoded, SparseBits::Sparse { .. }));
    let decoded = encoded.decode().unwrap();
    let rebuilt = RsuSketch::from_parts(RsuId(1), decoded, original.count()).unwrap();
    let direct = d.estimate_pair(RsuId(1), RsuId(2)).unwrap();
    let via_sparse =
        vcps::estimate_pair(&rebuilt, d.sketch(RsuId(2)).unwrap(), scheme.s()).unwrap();
    assert_eq!(direct, via_sparse);
}

#[test]
fn merged_periods_estimate_union_overlap() {
    // Two disjoint-population periods merged: the pair estimate measures
    // the union overlap (600 = 300 + 300).
    let scheme = Scheme::variable(2, 6.0, 9).unwrap();
    let m_a = scheme.array_size_for(4_000.0).unwrap();
    let m_b = scheme.array_size_for(4_000.0).unwrap();
    let m_o = m_a.max(m_b);
    let mut merged_a = RsuSketch::new(RsuId(1), m_a).unwrap();
    let mut merged_b = RsuSketch::new(RsuId(2), m_b).unwrap();
    for period in 0..2u64 {
        let mut a = RsuSketch::new(RsuId(1), m_a).unwrap();
        let mut b = RsuSketch::new(RsuId(2), m_b).unwrap();
        let base = period * 1_000_000;
        for i in 0..2_000u64 {
            let v =
                VehicleIdentity::from_raw(base + i, vcps::hash::splitmix64((base + i) ^ 0xFACE));
            a.record(scheme.report_index(&v, RsuId(1), m_a, m_o))
                .unwrap();
            if i < 300 {
                b.record(scheme.report_index(&v, RsuId(2), m_b, m_o))
                    .unwrap();
            }
        }
        merged_a.merge(&a).unwrap();
        merged_b.merge(&b).unwrap();
    }
    let estimate = vcps::estimate_pair(&merged_a, &merged_b, scheme.s()).unwrap();
    let rel = estimate.relative_error(600.0).unwrap();
    assert!(rel < 0.35, "union estimate {} vs 600", estimate.n_c);
    assert_eq!(estimate.n_x, 600, "merged counters sum");
    assert_eq!(estimate.n_y, 4_000);
}

#[test]
fn communication_metrics_match_protocol_shape() {
    let scheme = Scheme::variable(2, 3.0, 5).unwrap();
    let workload = SyntheticPair::generate(1_000, 10_000, 200, 3);
    // History says RSU 1 usually sees 500k vehicles: its array is
    // provisioned huge, so this quiet period's upload is very sparse.
    let (_, metrics) = PairRunner::new(scheme, RsuId(1), RsuId(2))
        .with_history(500_000.0, 10_000.0)
        .run_with_metrics(&workload)
        .unwrap();
    assert_eq!(metrics.reports, 11_000);
    // 33-byte query + 15-byte report per passage.
    assert_eq!(
        metrics.query_bytes + metrics.report_bytes,
        11_000 * (33 + 15)
    );
    // The under-filled giant array uploads sparse: big savings.
    assert!(
        metrics.upload_savings().unwrap() > 0.5,
        "savings {:?}",
        metrics.upload_savings()
    );
}

#[test]
fn frank_wolfe_and_tntp_interoperate() {
    // Export Sioux Falls to TNTP text, re-import, and confirm the
    // equilibrium solver produces the same objective on both copies.
    let net = sioux_falls::network();
    let trips = sioux_falls::trip_table();
    let reparsed_net = tntp::parse_network(&tntp::write_network(&net)).unwrap();
    let reparsed_trips = tntp::parse_trips(&tntp::write_trips(&trips)).unwrap();
    let a = frank_wolfe::frank_wolfe(&net, &trips, 20, 1e-4);
    let b = frank_wolfe::frank_wolfe(&reparsed_net, &reparsed_trips, 20, 1e-4);
    assert!((a.objective - b.objective).abs() < 1e-6 * a.objective);
}

#[test]
fn profile_agrees_with_simulation_regime() {
    // A configuration the profile calls healthy really does produce
    // usable estimates; one it calls saturated really does clamp.
    let healthy = PairParams::new(5_000.0, 5_000.0, 1_000.0, 32_768.0, 32_768.0, 2.0).unwrap();
    let profile = Profile::compute(&healthy).unwrap();
    assert_eq!(profile.regime, Regime::Healthy);
    let scheme = Scheme::fixed(2, 32_768, 4).unwrap();
    let outcome = PairRunner::new(scheme, RsuId(1), RsuId(2))
        .run(&SyntheticPair::generate(5_000, 5_000, 1_000, 8))
        .unwrap();
    assert!(!outcome.estimate.clamped);
    let rel = outcome.relative_error().unwrap();
    assert!(
        rel < 4.0 * profile.sd_exact + 0.05,
        "simulated error {rel} vs predicted sd {}",
        profile.sd_exact
    );

    let saturated = PairParams::new(100_000.0, 100_000.0, 1_000.0, 256.0, 256.0, 2.0).unwrap();
    assert_eq!(
        Profile::compute(&saturated).unwrap().regime,
        Regime::Saturated
    );
    let tiny = Scheme::fixed(2, 256, 4).unwrap();
    let outcome = PairRunner::new(tiny, RsuId(1), RsuId(2))
        .run(&SyntheticPair::generate(100_000, 100_000, 1_000, 8))
        .unwrap();
    assert!(
        outcome.estimate.clamped,
        "saturation predicted and observed"
    );
}

#[test]
fn hash_diagnostics_back_the_uniformity_assumption() {
    use vcps::hash::diagnostics;
    let family = vcps::HashFamily::new(0xD1A6);
    let avalanche = diagnostics::avalanche(&family, 128);
    assert!(avalanche.worst_deviation() < 0.1);
    let (chi, dof) = diagnostics::chi_squared_uniformity(&family, 128, 128_000);
    assert!(chi < 2.0 * dof as f64, "chi-squared {chi} on {dof} dof");
}
