//! Property-based tests (proptest) on the core data structures and the
//! paper's mathematical invariants.

use proptest::prelude::*;

use vcps::analysis::{accuracy, privacy, stats, PairParams};
use vcps::bitarray::{combined_zero_count, combined_zero_count_naive, BitArray, Pow2};
use vcps::roadnet::{gravity_demand, metro_marginals};
use vcps::{estimate_pair, RsuId, RsuSketch, Salts, Scheme, VehicleIdentity};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- BitArray ------------------------------------------------------

    #[test]
    fn bits_set_are_bits_read(len in 1usize..500, indices in prop::collection::vec(0usize..500, 0..64)) {
        let valid: Vec<usize> = indices.into_iter().filter(|&i| i < len).collect();
        let array = BitArray::from_indices(len, valid.iter().copied()).unwrap();
        for &i in &valid {
            prop_assert!(array.get(i));
        }
        let mut distinct = valid.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert_eq!(array.count_ones(), distinct.len());
        prop_assert_eq!(array.count_ones() + array.count_zeros(), len);
        prop_assert_eq!(array.ones().collect::<Vec<_>>(), distinct);
    }

    #[test]
    fn unfold_preserves_pattern_and_density(
        k in 0u32..8, extra in 0u32..4,
        seed_bits in prop::collection::vec(any::<bool>(), 1..256)
    ) {
        let m_x = 1usize << k;
        let m_y = m_x << extra;
        let bits: Vec<bool> = (0..m_x).map(|i| seed_bits[i % seed_bits.len()]).collect();
        let small = BitArray::from_bools(&bits).unwrap();
        let unfolded = small.unfold(m_y).unwrap();
        // Eq. 3: B^u[i] = B[i mod m_x].
        for i in 0..m_y {
            prop_assert_eq!(unfolded.get(i), small.get(i % m_x));
        }
        prop_assert!((unfolded.zero_fraction() - small.zero_fraction()).abs() < 1e-12);
    }

    #[test]
    fn streaming_combined_count_equals_materialized(
        kx in 0u32..9, extra in 0u32..5,
        xs in prop::collection::vec(any::<u32>(), 0..128),
        ys in prop::collection::vec(any::<u32>(), 0..512),
    ) {
        let m_x = 1usize << kx;
        let m_y = m_x << extra;
        let x = BitArray::from_indices(m_x, xs.iter().map(|&v| v as usize % m_x)).unwrap();
        let y = BitArray::from_indices(m_y, ys.iter().map(|&v| v as usize % m_y)).unwrap();
        prop_assert_eq!(
            combined_zero_count(&x, &y).unwrap(),
            combined_zero_count_naive(&x, &y).unwrap()
        );
    }

    #[test]
    fn or_is_commutative_and_monotone(
        len in 1usize..300,
        xs in prop::collection::vec(any::<u32>(), 0..64),
        ys in prop::collection::vec(any::<u32>(), 0..64),
    ) {
        let a = BitArray::from_indices(len, xs.iter().map(|&v| v as usize % len)).unwrap();
        let b = BitArray::from_indices(len, ys.iter().map(|&v| v as usize % len)).unwrap();
        let ab = a.or(&b).unwrap();
        let ba = b.or(&a).unwrap();
        prop_assert_eq!(&ab, &ba);
        prop_assert!(ab.count_ones() >= a.count_ones().max(b.count_ones()));
        prop_assert!(ab.count_ones() <= a.count_ones() + b.count_ones());
    }

    #[test]
    fn words_roundtrip_any_length(len in 1usize..400, xs in prop::collection::vec(any::<u32>(), 0..64)) {
        let a = BitArray::from_indices(len, xs.iter().map(|&v| v as usize % len)).unwrap();
        let b = BitArray::from_words(a.as_words().to_vec(), len).unwrap();
        prop_assert_eq!(a, b);
    }

    // ---- Pow2 ----------------------------------------------------------

    #[test]
    fn pow2_ceil_is_tight(target in 1.0f64..1e12) {
        let p = Pow2::ceil_from(target).unwrap();
        prop_assert!(p.get() as f64 >= target);
        // Tight: the next power down is below the target (or p = 1).
        if p.get() > 1 {
            prop_assert!(((p.get() / 2) as f64) < target);
        }
    }

    #[test]
    fn pow2_ratio_exact(ka in 0u32..30, kb in 0u32..30) {
        let a = Pow2::from_log2(ka);
        let b = Pow2::from_log2(kb);
        if ka <= kb {
            prop_assert_eq!(a.ratio_to(b), Some(1usize << (kb - ka)));
        } else {
            prop_assert_eq!(a.ratio_to(b), None);
        }
    }

    // ---- stats ---------------------------------------------------------

    #[test]
    fn binomial_pmf_is_a_distribution(n in 0u64..200, p in 0.0f64..=1.0) {
        let masses: Vec<f64> = stats::binomial_pmf(n, p).collect();
        prop_assert_eq!(masses.len() as u64, n + 1);
        prop_assert!(masses.iter().all(|&m| (-1e-12..=1.0 + 1e-9).contains(&m)));
        let total: f64 = masses.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "sum {}", total);
    }

    #[test]
    fn pow_one_minus_bounds(frac in 0.0f64..1.0, n in 0.0f64..1e6) {
        let v = stats::pow_one_minus(frac, n);
        prop_assert!((0.0..=1.0).contains(&v));
    }

    #[test]
    fn online_stats_matches_naive(xs in prop::collection::vec(-1e6f64..1e6, 2..200)) {
        let acc: stats::OnlineStats = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        prop_assert!((acc.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert_eq!(acc.count() as usize, xs.len());
    }

    // ---- analysis invariants --------------------------------------------

    #[test]
    fn privacy_closed_form_equals_direct_sum(
        n_x in 10.0f64..5_000.0,
        skew in 1.0f64..50.0,
        overlap in 0.0f64..1.0,
        f in 0.2f64..50.0,
        s in 2.0f64..10.0,
    ) {
        let n_y = n_x * skew;
        let n_c = (overlap * n_x).floor();
        let p = PairParams::from_load_factor(f, n_x, n_y, n_c, s).unwrap();
        let closed = privacy::prob_not_both_set(&p);
        let direct = privacy::prob_not_both_set_direct(&p);
        prop_assert!((closed - direct).abs() < 1e-7, "closed {} vs direct {}", closed, direct);
        let priv_p = privacy::preserved_privacy(&p);
        prop_assert!((0.0..=1.0).contains(&priv_p));
    }

    #[test]
    fn q_c_is_a_probability_and_monotone_in_overlap(
        n_x in 10.0f64..10_000.0,
        skew in 1.0f64..50.0,
        f in 0.5f64..20.0,
        s in 2.0f64..10.0,
    ) {
        let n_y = n_x * skew;
        let lo = PairParams::from_load_factor(f, n_x, n_y, 0.0, s).unwrap();
        let hi = PairParams::from_load_factor(f, n_x, n_y, n_x.min(n_y) * 0.5, s).unwrap();
        let (q_lo, q_hi) = (accuracy::q_c(&lo), accuracy::q_c(&hi));
        prop_assert!((0.0..=1.0).contains(&q_lo) && (0.0..=1.0).contains(&q_hi));
        prop_assert!(q_hi >= q_lo, "more overlap, more zeros: {} vs {}", q_hi, q_lo);
    }

    #[test]
    fn estimator_bias_is_small_relative_to_point_volume(
        n_x in 1_000.0f64..50_000.0,
        skew in 1.0f64..20.0,
        s in 2.0f64..10.0,
    ) {
        // The absolute bias |E[n̂_c] − n_c| scales with the point volumes
        // (and grows with s via the shrinking denominator), not with the
        // overlap — so bound it against n_x, not n_c.
        let n_y = n_x * skew;
        let n_c = n_x * 0.2;
        let p = PairParams::from_load_factor(4.0, n_x, n_y, n_c, s).unwrap();
        let abs_bias = (accuracy::expected_estimate(&p) - n_c).abs();
        prop_assert!(abs_bias < 0.03 * n_x, "bias {} vehicles on n_x {}", abs_bias, n_x);
    }

    // ---- scheme/estimator ------------------------------------------------

    #[test]
    fn estimate_is_symmetric_in_arguments(
        kx in 4u32..10, extra in 0u32..4,
        xs in prop::collection::vec(any::<u32>(), 1..64),
        ys in prop::collection::vec(any::<u32>(), 1..64),
        s in 2usize..10,
    ) {
        let m_x = 1usize << kx;
        let m_y = m_x << extra;
        let mut a = RsuSketch::new(RsuId(1), m_x).unwrap();
        for &v in &xs { a.record(v as usize % m_x).unwrap(); }
        let mut b = RsuSketch::new(RsuId(2), m_y).unwrap();
        for &v in &ys { b.record(v as usize % m_y).unwrap(); }
        let ab = estimate_pair(&a, &b, s);
        let ba = estimate_pair(&b, &a, s);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn report_indices_always_in_range(
        id in any::<u64>(), key in any::<u64>(), rsu in any::<u64>(),
        k in 1u32..16, extra in 0u32..6, seed in any::<u64>(),
    ) {
        let scheme = Scheme::variable(2, 3.0, seed).unwrap();
        let m_x = 1usize << k;
        let m_o = m_x << extra;
        let v = VehicleIdentity::from_raw(id, key);
        let idx = scheme.report_index(&v, RsuId(rsu), m_x, m_o);
        prop_assert!(idx < m_x);
    }

    #[test]
    fn logical_positions_consistent_with_reports(
        id in any::<u64>(), key in any::<u64>(), rsu in any::<u64>(), seed in any::<u64>(),
    ) {
        // Whatever a vehicle reports must be one of its logical positions
        // reduced mod m_x — the structural privacy invariant.
        let scheme = Scheme::variable(5, 3.0, seed).unwrap();
        let (m_x, m_o) = (1usize << 10, 1usize << 16);
        let v = VehicleIdentity::from_raw(id, key);
        let report = scheme.report_index(&v, RsuId(rsu), m_x, m_o);
        let positions = v.logical_positions(scheme.family(), scheme.salts(), m_o);
        prop_assert!(positions.iter().any(|&b| b % m_x == report));
    }

    #[test]
    fn salts_generation_is_stable(s in 1usize..32, seed in any::<u64>()) {
        prop_assert_eq!(Salts::generate(s, seed), Salts::generate(s, seed));
        prop_assert_eq!(Salts::generate(s, seed).len(), s);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // ---- metro gravity demand (DESIGN.md §20) ---------------------------

    /// The doubly-constrained gravity generator must reproduce its
    /// configured trip-end marginals: every row sum matches the zone's
    /// production and every column sum matches its attraction (rescaled
    /// to the production total) within IPF tolerance — and zones with a
    /// zero marginal never emit or receive any demand at all.
    #[test]
    fn gravity_demand_reproduces_marginals_and_respects_dead_zones(
        n in 4usize..20,
        total in 500.0f64..50_000.0,
        zero_fraction in 0.0f64..0.5,
        seed in any::<u64>(),
    ) {
        let (productions, attractions) =
            metro_marginals(n, total, zero_fraction, (1.0, 80.0), seed);
        let table = gravity_demand(&productions, &attractions, seed);
        prop_assert_eq!(table.node_count(), n);

        let production_total: f64 = productions.iter().sum();
        let attraction_total: f64 = attractions.iter().sum();
        for (o, &production) in productions.iter().enumerate() {
            let row = table.row_total(o);
            prop_assert!(
                (row - production).abs() <= 1e-6 * (1.0 + production),
                "row {} sums to {} but production is {}", o, row, production
            );
        }
        for (d, &attraction) in attractions.iter().enumerate() {
            let column: f64 = (0..n).map(|o| table.demand(o, d)).sum();
            let target = attraction * production_total / attraction_total;
            prop_assert!(
                (column - target).abs() <= 1e-6 * (1.0 + target),
                "column {} sums to {} but target is {}", d, column, target
            );
        }
        // Dead zones are exactly zero in both directions, and the
        // diagonal never carries intrazonal demand.
        for z in 0..n {
            prop_assert_eq!(table.demand(z, z), 0.0);
            if productions[z] == 0.0 {
                for d in 0..n {
                    prop_assert_eq!(table.demand(z, d), 0.0, "dead zone {} emitted", z);
                }
            }
            if attractions[z] == 0.0 {
                for o in 0..n {
                    prop_assert_eq!(table.demand(o, z), 0.0, "dead zone {} attracted", z);
                }
            }
        }
    }

    /// For a fixed seed the generator is a pure function — byte-identical
    /// across repeated calls and across concurrent threads (the synthesis
    /// pipeline must not depend on who computes it, so a sharded and a
    /// monolithic metro run always agree on the workload itself).
    #[test]
    fn gravity_demand_is_deterministic_and_thread_independent(
        n in 4usize..12,
        seed in any::<u64>(),
    ) {
        let (productions, attractions) =
            metro_marginals(n, 2_000.0, 0.2, (1.0, 80.0), seed);
        let reference = gravity_demand(&productions, &attractions, seed);
        prop_assert_eq!(&gravity_demand(&productions, &attractions, seed), &reference);

        let workers: Vec<_> = (0..4)
            .map(|_| {
                let (productions, attractions) = (productions.clone(), attractions.clone());
                std::thread::spawn(move || gravity_demand(&productions, &attractions, seed))
            })
            .collect();
        for worker in workers {
            let table = worker.join().expect("worker panicked");
            prop_assert_eq!(&table, &reference);
        }
    }
}

// ---- promoted regressions ----------------------------------------------
//
// Each test below pins a shrunken counterexample proptest once found
// (see `property.proptest-regressions`, which stays checked in as a
// second line of defense). Promoting them to named tests keeps the
// failure mode documented and re-run on every `cargo test`, even if the
// regressions file is lost or the generator strategies change shape.
mod regressions {
    use vcps::analysis::{accuracy, privacy, stats, PairParams};
    use vcps::roadnet::{gravity_demand, metro_marginals};
    use vcps::{estimate_pair, RsuId, RsuSketch};

    /// Found by `gravity_demand_reproduces_marginals_and_respects_dead_zones`:
    /// with log-uniform weights one zone can dominate a marginal so far
    /// that its production exceeds what the *other* zones' attractions
    /// can absorb (the diagonal is forbidden), making the
    /// doubly-constrained problem infeasible — IPF then stalls ~10% off
    /// the configured marginal. `metro_marginals` now water-fills both
    /// marginals to at most a 45% share; an extreme weight range must
    /// still balance to 1e-6.
    #[test]
    fn gravity_demand_balances_dominant_zone_marginals() {
        for seed in [0u64, 14, 0xDEAD_BEEF] {
            let (productions, attractions) = metro_marginals(4, 10_000.0, 0.0, (1.0, 1.0e6), seed);
            let table = gravity_demand(&productions, &attractions, seed);
            let production_total: f64 = productions.iter().sum();
            let attraction_total: f64 = attractions.iter().sum();
            for (o, &production) in productions.iter().enumerate() {
                let row = table.row_total(o);
                assert!(
                    (row - production).abs() <= 1e-6 * (1.0 + production),
                    "seed {seed}: row {o} sums to {row} but production is {production}"
                );
            }
            for (d, &attraction) in attractions.iter().enumerate() {
                let column: f64 = (0..4).map(|o| table.demand(o, d)).sum();
                let target = attraction * production_total / attraction_total;
                assert!(
                    (column - target).abs() <= 1e-6 * (1.0 + target),
                    "seed {seed}: column {d} sums to {column} but target is {target}"
                );
            }
        }
    }

    /// Found by `gravity_demand_is_deterministic_and_thread_independent`
    /// while the share cap was a clamp-until-stable loop: two mutually
    /// dominant zones pull each other down geometrically and the loop
    /// never stabilizes (it tripped its pass bound). The cap is now an
    /// exact closed-form water-fill; the two-giants-one-dwarf shape must
    /// land both giants on exactly the 45% cap.
    #[test]
    fn share_cap_resolves_mutually_dominant_zones_exactly() {
        // weight_range (1, 1e9) with 3 zones reliably produces two
        // entries far above the cap; whatever the draw, the capped
        // output must satisfy the share bound exactly.
        for seed in [1u64, 2, 3, 0xFEED] {
            let (productions, attractions) = metro_marginals(3, 1_000.0, 0.0, (1.0, 1.0e9), seed);
            for weights in [&productions, &attractions] {
                let total: f64 = weights.iter().sum();
                for (i, &w) in weights.iter().enumerate() {
                    assert!(
                        w <= 0.45 * total * (1.0 + 1e-9),
                        "seed {seed}: zone {i} holds {} of {total}",
                        w / total
                    );
                }
            }
            // And the capped marginals remain balanceable.
            let table = gravity_demand(&productions, &attractions, seed);
            for (o, &production) in productions.iter().enumerate() {
                assert!(
                    (table.row_total(o) - production).abs() <= 1e-6 * (1.0 + production),
                    "seed {seed}: row {o} off its production"
                );
            }
        }
    }

    /// Shrunk from `estimate_is_symmetric_in_arguments`: the minimal
    /// equal-size pair (m_x = m_y = 16) where both RSUs saw only bit 0.
    /// The orientation tie-break (`first_plays_x`) must fall back to RSU
    /// id when sizes and counters alone cannot order the pair, or the
    /// two call orders decode different (x, y) roles.
    #[test]
    fn estimate_symmetry_holds_on_identical_single_bit_sketches() {
        let mut a = RsuSketch::new(RsuId(1), 16).unwrap();
        a.record(0).unwrap();
        let mut b = RsuSketch::new(RsuId(2), 16).unwrap();
        b.record(0).unwrap();
        b.record(0).unwrap();
        assert_eq!(estimate_pair(&a, &b, 2), estimate_pair(&b, &a, 2));
    }

    /// Shrunk from `privacy_closed_form_equals_direct_sum`: near-total
    /// overlap (99.94%) at a load factor of 0.2 drives the direct
    /// summation (Eqs. 37–39) through terms that nearly cancel; the
    /// closed form (Eq. 40) must still agree to 1e-7.
    #[test]
    fn privacy_closed_form_agrees_under_near_total_overlap() {
        let n_x: f64 = 2521.572393523587;
        let n_c = (0.9993622293283656 * n_x).floor();
        let p = PairParams::from_load_factor(0.2, n_x, n_x, n_c, 2.0).unwrap();
        let closed = privacy::prob_not_both_set(&p);
        let direct = privacy::prob_not_both_set_direct(&p);
        assert!(
            (closed - direct).abs() < 1e-7,
            "closed {closed} vs direct {direct}"
        );
        assert!((0.0..=1.0).contains(&privacy::preserved_privacy(&p)));
    }

    /// Shrunk from `binomial_pmf_is_a_distribution`: p close to 1 with a
    /// three-digit n concentrates the mass in the last few terms, where
    /// the recurrence's (1-p) factors are tiny — the masses must still
    /// stay in [0, 1] and sum to 1.
    #[test]
    fn binomial_pmf_sums_to_one_with_probability_near_one() {
        let masses: Vec<f64> = stats::binomial_pmf(156, 0.9910595392348122).collect();
        assert_eq!(masses.len(), 157);
        assert!(masses.iter().all(|&m| (-1e-12..=1.0 + 1e-9).contains(&m)));
        let total: f64 = masses.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "sum {total}");
    }

    /// Shrunk from `estimator_bias_is_small_relative_to_point_volume`:
    /// the worst corner of the bias bound — smallest allowed n_x with
    /// extreme skew (n_y ≈ 19.7 n_x) and s ≈ 8.78 shrinking the
    /// denominator of Eq. 23. The expected estimate must stay within 3%
    /// of n_x of the true overlap.
    #[test]
    fn estimator_bias_stays_bounded_at_extreme_skew() {
        let (n_x, skew, s) = (1000.0, 19.714_007_188_741_7, 8.777_198_127_287_51);
        let n_c = n_x * 0.2;
        let p = PairParams::from_load_factor(4.0, n_x, n_x * skew, n_c, s).unwrap();
        let abs_bias = (accuracy::expected_estimate(&p) - n_c).abs();
        assert!(
            abs_bias < 0.03 * n_x,
            "bias {abs_bias} vehicles on n_x {n_x}"
        );
    }
}
