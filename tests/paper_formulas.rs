//! Spec conformance: each numbered formula of the paper pinned against
//! an independent hand computation at small parameters, so any future
//! refactor that drifts from the paper's math fails loudly here.
//!
//! Conventions: `q_m(n) = (1 − 1/m)^n`, `t = (s − 1)/s`.

use vcps::analysis::{accuracy, privacy, stats, PairParams};
use vcps::core::estimator;

const N_X: f64 = 120.0;
const N_Y: f64 = 480.0;
const N_C: f64 = 30.0;
const M_X: f64 = 256.0;
const M_Y: f64 = 1024.0;
const S: f64 = 2.0;

fn params() -> PairParams {
    PairParams::new(N_X, N_Y, N_C, M_X, M_Y, S).unwrap()
}

fn q(m: f64, n: f64) -> f64 {
    (1.0 - 1.0 / m).powf(n)
}

#[test]
fn eq_5_estimator_formula() {
    // n̂_c = (ln V_c − ln V_x − ln V_y) / (ln(1 − t/m_y) − ln(1 − 1/m_y)).
    let mut x = vcps::RsuSketch::new(vcps::RsuId(1), M_X as usize).unwrap();
    let mut y = vcps::RsuSketch::new(vcps::RsuId(2), M_Y as usize).unwrap();
    for i in 0..40 {
        x.record((i * 7) % M_X as usize).unwrap();
        y.record((i * 13) % M_Y as usize).unwrap();
    }
    let e = estimator::estimate_pair(&x, &y, S as usize).unwrap();
    let t = (S - 1.0) / S;
    let denom = (1.0 - t / M_Y).ln() - (1.0 - 1.0 / M_Y).ln();
    let expected = (e.v_c.ln() - e.v_x.ln() - e.v_y.ln()) / denom;
    assert!((e.n_c - expected).abs() < 1e-9);
}

#[test]
fn eq_9_combined_zero_probability() {
    // q(n_c) = q_mx(n_x) · q_my(n_y) · ((1 − t/m_y)/(1 − 1/m_y))^{n_c}.
    let t = (S - 1.0) / S;
    let expected = q(M_X, N_X) * q(M_Y, N_Y) * ((1.0 - t / M_Y) / (1.0 - 1.0 / M_Y)).powf(N_C);
    assert!((accuracy::q_c(&params()) - expected).abs() < 1e-12);
}

#[test]
fn eq_10_11_per_array_zero_probabilities() {
    assert!((accuracy::q_x(&params()) - q(M_X, N_X)).abs() < 1e-12);
    assert!((accuracy::q_y(&params()) - q(M_Y, N_Y)).abs() < 1e-12);
}

#[test]
fn eq_24_25_27_log_mean_pattern() {
    // E[ln V] = ln q − (1 − q)/(2 m q).
    let qx = q(M_X, N_X);
    let expected = qx.ln() - (1.0 - qx) / (2.0 * M_X * qx);
    assert!((accuracy::e_ln_v(qx, M_X) - expected).abs() < 1e-12);
}

#[test]
fn eq_28_31_log_variance_pattern() {
    // Var[ln V] = (1 − q)/(m q).
    let qy = q(M_Y, N_Y);
    assert!((accuracy::var_ln_v(qy, M_Y) - (1.0 - qy) / (M_Y * qy)).abs() < 1e-12);
}

#[test]
fn eq_32_33_expectation_and_bias() {
    // E[n̂_c] = (E ln V_c − E ln V_x − E ln V_y)/denominator; bias = E/n_c − 1.
    let p = params();
    let (qx, qy, qc) = (accuracy::q_x(&p), accuracy::q_y(&p), accuracy::q_c(&p));
    let num = accuracy::e_ln_v(qc, M_Y) - accuracy::e_ln_v(qx, M_X) - accuracy::e_ln_v(qy, M_Y);
    let expected = num / accuracy::denominator(&p);
    assert!((accuracy::expected_estimate(&p) - expected).abs() < 1e-9);
    assert!((accuracy::bias_ratio(&p) - (expected / N_C - 1.0)).abs() < 1e-12);
}

#[test]
fn eq_37_binomial_shared_bit_count() {
    // n_s ~ B(n_c, 1/s): the direct privacy route sums exactly these
    // masses.
    let masses: Vec<f64> = stats::binomial_pmf(N_C as u64, 1.0 / S).collect();
    assert_eq!(masses.len() as f64, N_C + 1.0);
    // Hand value: P(n_s = 0) = (1 − 1/s)^{n_c}.
    assert!((masses[0] - (1.0 - 1.0 / S).powf(N_C)).abs() < 1e-12);
}

#[test]
fn eq_40_closed_form_p_not_both_set() {
    // P(Ā) = q_mx(n_x)·C4^{n_c} + q_my(n_y) − q_mx(n_x)·q_my(n_y)·C5^{n_c},
    // C4 = (1/s)(1−1/m_y)/(1−1/m_x) + (1−1/s), C5 = (1/s)/(1−1/m_x) + (1−1/s).
    let c4 = (1.0 / S) * (1.0 - 1.0 / M_Y) / (1.0 - 1.0 / M_X) + (1.0 - 1.0 / S);
    let c5 = (1.0 / S) / (1.0 - 1.0 / M_X) + (1.0 - 1.0 / S);
    let expected =
        q(M_X, N_X) * c4.powf(N_C) + q(M_Y, N_Y) - q(M_X, N_X) * q(M_Y, N_Y) * c5.powf(N_C);
    assert!((privacy::prob_not_both_set(&params()) - expected).abs() < 1e-12);
}

#[test]
fn eq_41_42_single_side_events() {
    // P(E_x) = (1 − q_mx(n_x − n_c))·q_mx(n_c) = q_mx(n_c) − q_mx(n_x).
    let expected_x = (1.0 - q(M_X, N_X - N_C)) * q(M_X, N_C);
    assert!((privacy::prob_e_x(&params()) - expected_x).abs() < 1e-12);
    let expected_y = (1.0 - q(M_Y, N_Y - N_C)) * q(M_Y, N_C);
    assert!((privacy::prob_e_y(&params()) - expected_y).abs() < 1e-12);
}

#[test]
fn eq_43_preserved_privacy() {
    // p = P(E_x)·P(E_y)/P(A).
    let p = params();
    let expected =
        privacy::prob_e_x(&p) * privacy::prob_e_y(&p) / (1.0 - privacy::prob_not_both_set(&p));
    assert!((privacy::preserved_privacy(&p) - expected).abs() < 1e-12);
}

#[test]
fn section_iv_b_sizing_rule() {
    // m_x = 2^ceil(log2(n̄_x · f̄)).
    let scheme = vcps::Scheme::variable(2, 3.0, 1).unwrap();
    for (volume, expected) in [
        (10.0, 32usize),      // 30 -> 2^5
        (100.0, 512),         // 300 -> 2^9
        (342.0, 2_048),       // 1026 -> 2^11 (just past 2^10)
        (451_000.0, 1 << 21), // 1,353,000 -> 2^21
    ] {
        assert_eq!(
            scheme.array_size_for(volume).unwrap(),
            expected,
            "volume {volume}"
        );
    }
}

#[test]
fn baseline_equivalence_when_sizes_match() {
    // §VI-A: with m_x = m_y every formula reduces to [9]'s.
    let var = PairParams::new(N_X, N_X, N_C, M_X, M_X, S).unwrap();
    let fixed = PairParams::fixed_size(M_X, N_X, N_X, N_C, S).unwrap();
    assert_eq!(
        privacy::preserved_privacy(&var),
        privacy::preserved_privacy(&fixed)
    );
    assert_eq!(accuracy::q_c(&var), accuracy::q_c(&fixed));
    assert_eq!(
        accuracy::expected_estimate(&var),
        accuracy::expected_estimate(&fixed)
    );
}
