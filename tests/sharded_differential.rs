//! Differential conformance suite for the sharded batch-ingestion
//! server (DESIGN.md §15).
//!
//! The sharding layer's core contract is that a [`ShardedServer`] is an
//! *indistinguishable* drop-in for the monolithic [`CentralServer`]:
//! same pair estimates, same O–D matrices, and same registry counters
//! (modulo its own `shard.*` / `batch.*` series) at every shard count ×
//! worker count — under ideal channels and under seeded fault
//! injection. These properties drive randomized workloads through both
//! server shapes and assert bit-identity, not approximate agreement.

use std::collections::BTreeMap;

use proptest::prelude::*;

use vcps::hash::splitmix64;
use vcps::obs::{Level, Obs};
use vcps::roadnet::{Link, RoadNetwork, VehicleTrip};
use vcps::sim::engine::{
    run_network_period_faulty_sharded_threads_obs, run_network_period_faulty_threads_obs,
    run_network_period_sharded_threads_obs, run_network_period_threads_obs,
};
use vcps::sim::protocol::{PeriodUpload, SequencedUpload};
use vcps::sim::{CentralServer, FaultPlan, LinkFaults, RetryPolicy, ShardedServer};
use vcps::{BitArray, RsuId, Scheme};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Strips the sharded server's own progress series, leaving exactly the
/// counters the monolith also fires.
fn strip_shard_series(mut counters: BTreeMap<String, u64>) -> BTreeMap<String, u64> {
    counters.retain(|name, _| !name.starts_with("shard.") && !name.starts_with("batch."));
    counters
}

/// A deterministic pseudo-random period workload: one sequenced upload
/// per RSU (power-of-two array sizes from 64 to 1024 bits, varying fill
/// and sequence numbers) plus seed-derived re-sends that exercise the
/// duplicate / conflicting / stale dedup outcomes.
fn workload(rsus: u64, seed: u64) -> Vec<SequencedUpload> {
    let mut frames = Vec::new();
    for r in 1..=rsus {
        let h = splitmix64(seed ^ r);
        let m = 1usize << (6 + (h % 5) as usize);
        let ones = (h >> 8) % (m as u64 / 2);
        let bits = BitArray::from_indices(
            m,
            (0..ones).map(|i| (splitmix64(h ^ i) % m as u64) as usize),
        )
        .expect("indices in range");
        frames.push(SequencedUpload {
            seq: h % 3,
            upload: PeriodUpload {
                rsu: RsuId(r),
                counter: bits.count_ones() as u64 + h % 7,
                bits,
            },
        });
    }
    for r in 1..=rsus {
        let h = splitmix64(seed ^ r ^ 0xD1FF);
        let mut resend = frames[(r - 1) as usize].clone();
        match h % 4 {
            0 => continue,
            1 => {}                          // identical re-send -> Duplicate
            2 => resend.upload.counter ^= 1, // same seq, new content -> Conflicting
            _ => {
                // Lower sequence -> Stale (skipped when already at 0).
                if resend.seq == 0 {
                    continue;
                }
                resend.seq -= 1;
            }
        }
        frames.push(resend);
    }
    frames
}

/// Ingests the workload into a monolithic server the sequential way and
/// decodes everything, returning the server and its counter snapshot.
fn monolith(rsus: u64, frames: &[SequencedUpload]) -> (CentralServer, BTreeMap<String, u64>) {
    let obs = Obs::enabled(Level::Info);
    let scheme = Scheme::variable(2, 3.0, 9).expect("valid scheme");
    let mut server = CentralServer::new(scheme, 1.0)
        .expect("valid alpha")
        .with_obs(obs.clone());
    for r in 1..=rsus {
        server.seed_history(RsuId(r), (splitmix64(r) % 1_000 + 10) as f64);
    }
    for frame in frames {
        server.receive_sequenced(frame.clone());
    }
    let _ = server.od_matrix_threads(1);
    (server, obs.snapshot().counters)
}

/// A 4-node line network and a seed-derived trip population over it —
/// small enough for property-test budgets, rich enough that every node
/// sees traffic and pairs overlap partially.
fn line4() -> RoadNetwork {
    RoadNetwork::new(
        4,
        vec![
            Link::new(0, 1, 10.0, 2.0),
            Link::new(1, 2, 10.0, 3.0),
            Link::new(2, 3, 10.0, 2.5),
        ],
    )
    .expect("valid network")
}

fn line4_trips(count: u64, seed: u64) -> Vec<VehicleTrip> {
    const ROUTES: [&[usize]; 4] = [&[0, 1, 2, 3], &[0, 1, 2], &[1, 2, 3], &[2, 3]];
    (0..count)
        .map(|id| {
            let route = ROUTES[(splitmix64(seed ^ id) % 4) as usize].to_vec();
            VehicleTrip {
                id,
                origin: *route.first().expect("non-empty route"),
                dest: *route.last().expect("non-empty route"),
                route,
            }
        })
        .collect()
}

/// Every unordered RSU pair's estimate (measured or degraded), pulled
/// through the given closure so both server shapes share one call site.
fn all_pair_estimates<F, E>(nodes: u64, estimate: F) -> Vec<E>
where
    F: Fn(RsuId, RsuId) -> E,
{
    let mut out = Vec::new();
    for a in 0..nodes {
        for b in (a + 1)..nodes {
            out.push(estimate(RsuId(a), RsuId(b)));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Direct ingestion differential: random uploads (with duplicate,
    /// conflicting, and stale re-sends) through `receive_parallel` at
    /// every shard × worker count must reproduce the monolith's
    /// estimates, O–D matrix, and counters bit for bit.
    #[test]
    fn sharded_ingestion_is_bit_identical_to_monolith(
        rsus in 3u64..12,
        seed in any::<u64>(),
    ) {
        let frames = workload(rsus, seed);
        let (mono, mono_counters) = monolith(rsus, &frames);
        let mono_matrix = mono.od_matrix_threads(1);

        for shards in SHARD_COUNTS {
            for threads in THREAD_COUNTS {
                let obs = Obs::enabled(Level::Info);
                let scheme = Scheme::variable(2, 3.0, 9).expect("valid scheme");
                let mut server = ShardedServer::new(scheme, 1.0, shards)
                    .expect("valid shard count")
                    .with_obs(obs.clone());
                for r in 1..=rsus {
                    server.seed_history(RsuId(r), (splitmix64(r) % 1_000 + 10) as f64);
                }
                server.receive_parallel_threads(frames.clone(), threads);
                // Mirror the monolith's instrumented work exactly —
                // ingest then one all-pairs decode — before snapshotting,
                // so the counter comparison is apples to apples.
                let sharded_matrix = server.od_matrix_threads(threads);
                prop_assert_eq!(
                    strip_shard_series(obs.snapshot().counters), mono_counters.clone(),
                    "counters at {} shards x {} threads", shards, threads
                );

                prop_assert_eq!(
                    server.upload_count(), mono.upload_count(),
                    "upload count at {} shards x {} threads", shards, threads
                );
                for r in 1..=rsus {
                    prop_assert_eq!(
                        server.upload(RsuId(r)), mono.upload(RsuId(r)),
                        "upload bytes for rsu {} at {} shards x {} threads", r, shards, threads
                    );
                }
                prop_assert_eq!(
                    sharded_matrix, mono_matrix.clone(),
                    "od matrix at {} shards x {} threads", shards, threads
                );
                let sharded_pairs = all_pair_estimates(rsus + 1, |a, b| server.estimate_or_degraded(a, b));
                let mono_pairs = all_pair_estimates(rsus + 1, |a, b| mono.estimate_or_degraded(a, b));
                prop_assert_eq!(
                    sharded_pairs, mono_pairs,
                    "pair estimates at {} shards x {} threads", shards, threads
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Engine-level ideal-channel differential over a road network: the
    /// sharded run (batch-framed ingestion) must match the monolithic
    /// run's uploads, estimates, and counters at every shard × thread
    /// count.
    #[test]
    fn sharded_network_run_matches_monolith(
        trip_count in 60u64..200,
        seed in any::<u64>(),
    ) {
        let net = line4();
        let trips = line4_trips(trip_count, seed);
        let scheme = Scheme::variable(2, 3.0, 9).expect("valid scheme");
        let history = vec![trip_count as f64; 4];
        let mono_obs = Obs::enabled(Level::Info);
        let mono = run_network_period_threads_obs(
            &scheme, &net, &net.free_flow_times(), &trips, &history, 60.0, seed, 1, &mono_obs,
        ).expect("monolithic run");
        let mono_pairs = all_pair_estimates(4, |a, b| mono.server.estimate_or_degraded(a, b));

        for shards in SHARD_COUNTS {
            for threads in THREAD_COUNTS {
                let obs = Obs::enabled(Level::Info);
                let run = run_network_period_sharded_threads_obs(
                    &scheme, &net, &net.free_flow_times(), &trips, &history, 60.0, seed,
                    shards, threads, &obs,
                ).expect("sharded run");
                prop_assert_eq!(run.exchanges, mono.exchanges);
                for node in 0..4u64 {
                    prop_assert_eq!(
                        run.server.upload(RsuId(node)), mono.server.upload(RsuId(node)),
                        "upload for node {} at {} shards x {} threads", node, shards, threads
                    );
                }
                prop_assert_eq!(
                    all_pair_estimates(4, |a, b| run.server.estimate_or_degraded(a, b)),
                    mono_pairs.clone(),
                    "estimates at {} shards x {} threads", shards, threads
                );
                prop_assert_eq!(
                    strip_shard_series(obs.snapshot().counters),
                    mono_obs.snapshot().counters,
                    "counters at {} shards x {} threads", shards, threads
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Engine-level fault-injected differential: with seeded drop /
    /// duplication / corruption on both channels, the sharded run must
    /// replay the monolith's every fault decision — identical fault
    /// metrics, undelivered sets, upload bytes, estimates, and counters
    /// at every shard × thread count. (Rates include 0, so the ideal
    /// channel is a degenerate case of this property.)
    #[test]
    fn sharded_faulty_run_matches_monolith(
        trip_count in 60u64..160,
        seed in any::<u64>(),
        report_drop in 0.0f64..0.4,
        report_flip in 0.0f64..0.2,
        upload_drop in 0.0f64..0.6,
        upload_dup in 0.0f64..0.3,
    ) {
        let net = line4();
        let trips = line4_trips(trip_count, seed);
        let scheme = Scheme::variable(2, 3.0, 9).expect("valid scheme");
        let history = vec![trip_count as f64; 4];
        let plan = FaultPlan::new(seed ^ 0xFA_17)
            .with_report_link(
                LinkFaults::none().with_drop(report_drop).with_bit_flip(report_flip),
            )
            .with_upload_link(
                LinkFaults::none().with_drop(upload_drop).with_duplicate(upload_dup),
            );
        let policy = RetryPolicy::default();
        let mono_obs = Obs::enabled(Level::Info);
        let mono = run_network_period_faulty_threads_obs(
            &scheme, &net, &net.free_flow_times(), &trips, &history, 60.0, seed,
            &plan, &policy, 1, &mono_obs,
        ).expect("monolithic faulty run");
        let mono_pairs = all_pair_estimates(4, |a, b| mono.server.estimate_or_degraded(a, b));

        for shards in SHARD_COUNTS {
            for threads in THREAD_COUNTS {
                let obs = Obs::enabled(Level::Info);
                let run = run_network_period_faulty_sharded_threads_obs(
                    &scheme, &net, &net.free_flow_times(), &trips, &history, 60.0, seed,
                    &plan, &policy, shards, threads, &obs,
                ).expect("sharded faulty run");
                prop_assert_eq!(run.exchanges, mono.exchanges);
                prop_assert_eq!(
                    &run.faults, &mono.faults,
                    "fault metrics at {} shards x {} threads", shards, threads
                );
                prop_assert_eq!(
                    &run.undelivered, &mono.undelivered,
                    "undelivered at {} shards x {} threads", shards, threads
                );
                for node in 0..4u64 {
                    prop_assert_eq!(
                        run.server.upload(RsuId(node)), mono.server.upload(RsuId(node)),
                        "upload for node {} at {} shards x {} threads", node, shards, threads
                    );
                }
                prop_assert_eq!(
                    all_pair_estimates(4, |a, b| run.server.estimate_or_degraded(a, b)),
                    mono_pairs.clone(),
                    "estimates at {} shards x {} threads", shards, threads
                );
                prop_assert_eq!(
                    strip_shard_series(obs.snapshot().counters),
                    mono_obs.snapshot().counters,
                    "counters at {} shards x {} threads", shards, threads
                );
            }
        }
    }
}
