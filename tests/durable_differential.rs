//! Differential conformance suite for the durability layer (DESIGN.md
//! §17).
//!
//! The durability contract is that a server which crashes — losing
//! *all* in-memory state — and recovers from its write-ahead log and
//! checkpoints is indistinguishable from one that never crashed: same
//! uploads, same pair estimates, same O–D matrices, and same registry
//! counters (modulo the `wal.*` series) at every shard count × worker
//! count, under ideal channels and under seeded link-fault injection.
//! A corrupted log tail must surface as a typed error and recovery must
//! land on the last valid record — never a panic, never silently
//! accepted garbage.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use vcps::hash::splitmix64;
use vcps::obs::{Level, Obs};
use vcps::roadnet::{Link, RoadNetwork, VehicleTrip};
use vcps::sim::engine::{
    run_network_period_durable_faulty_sharded_threads_obs,
    run_network_period_durable_sharded_threads_obs, run_network_period_faulty_sharded_threads_obs,
    run_network_period_sharded_threads_obs,
};
use vcps::sim::protocol::{PeriodUpload, SequencedUpload};
use vcps::sim::{
    DurableOptions, DurableServer, FaultPlan, FlushPolicy, LinkFaults, RetryPolicy, ServerCrash,
    ShardedServer,
};
use vcps::{BitArray, RsuId, Scheme};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// A fresh scratch directory per call (unique across the whole test
/// binary, parallel tests included).
fn scratch(label: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "vcps-durable-{}-{label}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Strips the sharded server's progress series *and* the durability
/// layer's own counters, leaving exactly what an uninstrumented run
/// also fires.
fn strip_own_series(mut counters: BTreeMap<String, u64>) -> BTreeMap<String, u64> {
    counters.retain(|name, _| {
        !name.starts_with("shard.")
            && !name.starts_with("batch.")
            && !name.starts_with("wal.")
            && !name.starts_with("phase.wal_")
    });
    counters
}

/// The same seed-derived workload shape as the sharding differential:
/// one upload per RSU plus re-sends exercising every dedup verdict.
fn workload(rsus: u64, seed: u64) -> Vec<SequencedUpload> {
    let mut frames = Vec::new();
    for r in 1..=rsus {
        let h = splitmix64(seed ^ r);
        let m = 1usize << (6 + (h % 5) as usize);
        let ones = (h >> 8) % (m as u64 / 2);
        let bits = BitArray::from_indices(
            m,
            (0..ones).map(|i| (splitmix64(h ^ i) % m as u64) as usize),
        )
        .expect("indices in range");
        frames.push(SequencedUpload {
            seq: h % 3,
            upload: PeriodUpload {
                rsu: RsuId(r),
                counter: bits.count_ones() as u64 + h % 7,
                bits,
            },
        });
    }
    for r in 1..=rsus {
        let h = splitmix64(seed ^ r ^ 0xD1FF);
        let mut resend = frames[(r - 1) as usize].clone();
        match h % 4 {
            0 => continue,
            1 => {}
            2 => resend.upload.counter ^= 1,
            _ => {
                if resend.seq == 0 {
                    continue;
                }
                resend.seq -= 1;
            }
        }
        frames.push(resend);
    }
    frames
}

fn line4() -> RoadNetwork {
    RoadNetwork::new(
        4,
        vec![
            Link::new(0, 1, 10.0, 2.0),
            Link::new(1, 2, 10.0, 3.0),
            Link::new(2, 3, 10.0, 2.5),
        ],
    )
    .expect("valid network")
}

fn line4_trips(count: u64, seed: u64) -> Vec<VehicleTrip> {
    const ROUTES: [&[usize]; 4] = [&[0, 1, 2, 3], &[0, 1, 2], &[1, 2, 3], &[2, 3]];
    (0..count)
        .map(|id| {
            let route = ROUTES[(splitmix64(seed ^ id) % 4) as usize].to_vec();
            VehicleTrip {
                id,
                origin: *route.first().expect("non-empty route"),
                dest: *route.last().expect("non-empty route"),
                route,
            }
        })
        .collect()
}

fn all_pair_estimates<F, E>(nodes: u64, estimate: F) -> Vec<E>
where
    F: Fn(RsuId, RsuId) -> E,
{
    let mut out = Vec::new();
    for a in 0..nodes {
        for b in (a + 1)..nodes {
            out.push(estimate(RsuId(a), RsuId(b)));
        }
    }
    out
}

/// Ideal channels: a durable run — uninterrupted, crashed before the
/// batch record, and crashed after it — must reproduce the plain
/// sharded run's uploads, estimates, O–D matrix, and counters bit for
/// bit at every shard × thread count, with and without checkpoints.
#[test]
fn ideal_crash_and_recover_is_bit_identical() {
    let seed = 0xD0_0D;
    let net = line4();
    let trips = line4_trips(120, seed);
    let scheme = Scheme::variable(2, 3.0, 9).expect("valid scheme");
    let history = vec![120.0; 4];

    let ref_obs = Obs::enabled(Level::Info);
    let reference = run_network_period_sharded_threads_obs(
        &scheme,
        &net,
        &net.free_flow_times(),
        &trips,
        &history,
        60.0,
        seed,
        2,
        1,
        &ref_obs,
    )
    .expect("reference run");
    let ref_counters = strip_own_series(ref_obs.snapshot().counters);
    let ref_matrix = reference.server.od_matrix_threads(1);
    let ref_pairs = all_pair_estimates(4, |a, b| reference.server.estimate_or_degraded(a, b));

    let option_sets = [
        DurableOptions::log_only(),
        DurableOptions::log_only().with_checkpoint_every(1),
    ];
    for shards in SHARD_COUNTS {
        for threads in THREAD_COUNTS {
            for options in option_sets {
                // The whole period travels as one batch record, so crash
                // points 0 (empty-log recovery) and 1 (full-log recovery)
                // cover both ends; `None` is the uninterrupted control.
                for crash in [
                    None,
                    Some(ServerCrash { at_record: 0 }),
                    Some(ServerCrash { at_record: 1 }),
                ] {
                    let dir = scratch("ideal");
                    let obs = Obs::enabled(Level::Info);
                    let run = run_network_period_durable_sharded_threads_obs(
                        &scheme,
                        &net,
                        &net.free_flow_times(),
                        &trips,
                        &history,
                        60.0,
                        seed,
                        shards,
                        &dir,
                        options,
                        crash,
                        threads,
                        &obs,
                    )
                    .expect("durable run");
                    let label = format!(
                        "{shards} shards x {threads} threads, crash {crash:?}, options {options:?}"
                    );
                    // Snapshot before any reads — estimates and O–D
                    // decodes fire their own counters.
                    assert_eq!(
                        strip_own_series(obs.snapshot().counters),
                        ref_counters,
                        "counters: {label}"
                    );
                    assert_eq!(run.exchanges, reference.exchanges, "exchanges: {label}");
                    assert_eq!(run.wal_records, 1, "wal records: {label}");
                    assert_eq!(run.recovery.is_some(), crash.is_some(), "recovery: {label}");
                    if let (Some(report), Some(c)) = (&run.recovery, crash) {
                        if c.at_record == 0 {
                            assert_eq!(report.replayed_records, 0, "empty-log recovery: {label}");
                        }
                        assert!(report.tail_error.is_none(), "clean tail: {label}");
                    }
                    for node in 0..4u64 {
                        assert_eq!(
                            run.server.upload(RsuId(node)),
                            reference.server.upload(RsuId(node)),
                            "upload for node {node}: {label}"
                        );
                    }
                    assert_eq!(
                        run.server.od_matrix_threads(threads),
                        ref_matrix,
                        "od matrix: {label}"
                    );
                    assert_eq!(
                        all_pair_estimates(4, |a, b| run.server.estimate_or_degraded(a, b)),
                        ref_pairs,
                        "estimates: {label}"
                    );
                    let _ = std::fs::remove_dir_all(&dir);
                }
            }
        }
    }
}

/// Link-fault injection: seeded drop / bit-flip / duplication on both
/// channels, a retrying delivery path, and a server crash at the start,
/// middle, and end of the period. The crashed-and-recovered run must
/// replay the never-crashed faulty sharded run's every decision —
/// identical fault metrics, undelivered sets, uploads, estimates, and
/// counters.
#[test]
fn faulty_crash_and_recover_is_bit_identical() {
    let seed = 0xFA_CADE;
    let net = line4();
    let trips = line4_trips(100, seed);
    let scheme = Scheme::variable(2, 3.0, 9).expect("valid scheme");
    let history = vec![100.0; 4];
    let plan = FaultPlan::new(seed ^ 0xFA_17)
        .with_report_link(LinkFaults::none().with_drop(0.2).with_bit_flip(0.1))
        .with_upload_link(LinkFaults::none().with_drop(0.3).with_duplicate(0.2));
    let policy = RetryPolicy::default();

    let ref_obs = Obs::enabled(Level::Info);
    let reference = run_network_period_faulty_sharded_threads_obs(
        &scheme,
        &net,
        &net.free_flow_times(),
        &trips,
        &history,
        60.0,
        seed,
        &plan,
        &policy,
        2,
        1,
        &ref_obs,
    )
    .expect("reference faulty run");
    let ref_counters = strip_own_series(ref_obs.snapshot().counters);
    let ref_pairs = all_pair_estimates(4, |a, b| reference.server.estimate_or_degraded(a, b));

    let option_sets = [
        DurableOptions::log_only(),
        DurableOptions::log_only().with_checkpoint_every(2),
    ];
    for shards in SHARD_COUNTS {
        for threads in THREAD_COUNTS {
            for options in option_sets {
                // Crash immediately, mid-period, and (via an at_record
                // the log never reaches) at period end.
                for at_record in [0, 2, 1 << 40] {
                    let dir = scratch("faulty");
                    let obs = Obs::enabled(Level::Info);
                    let run = run_network_period_durable_faulty_sharded_threads_obs(
                        &scheme,
                        &net,
                        &net.free_flow_times(),
                        &trips,
                        &history,
                        60.0,
                        seed,
                        &plan,
                        &policy,
                        shards,
                        &dir,
                        options,
                        Some(ServerCrash { at_record }),
                        threads,
                        &obs,
                    )
                    .expect("durable faulty run");
                    let label = format!(
                        "{shards} shards x {threads} threads, crash at {at_record}, options {options:?}"
                    );
                    assert_eq!(
                        strip_own_series(obs.snapshot().counters),
                        ref_counters,
                        "counters: {label}"
                    );
                    assert_eq!(run.exchanges, reference.exchanges, "exchanges: {label}");
                    assert_eq!(run.faults, reference.faults, "fault metrics: {label}");
                    assert_eq!(
                        run.undelivered, reference.undelivered,
                        "undelivered: {label}"
                    );
                    let report = run.recovery.as_ref().expect("crash always recovers");
                    assert!(report.tail_error.is_none(), "clean tail: {label}");
                    for node in 0..4u64 {
                        assert_eq!(
                            run.server.upload(RsuId(node)),
                            reference.server.upload(RsuId(node)),
                            "upload for node {node}: {label}"
                        );
                    }
                    assert_eq!(
                        all_pair_estimates(4, |a, b| run.server.estimate_or_degraded(a, b)),
                        ref_pairs,
                        "estimates: {label}"
                    );
                    let _ = std::fs::remove_dir_all(&dir);
                }
            }
        }
    }
}

/// Feeds a workload through a durable server, then corrupts the WAL
/// tail (bit-flip or truncation) and recovers: the tail error must be
/// typed, recovery must land exactly on the longest valid prefix, and
/// the recovered state must equal a fresh server fed only that prefix.
#[test]
fn corrupted_tail_recovers_to_last_valid_record() {
    let frames = workload(8, 0xBAD_5EED);
    let scheme = Scheme::variable(2, 3.0, 9).expect("valid scheme");

    // `survivors` = exactly how many leading records the corruption
    // leaves intact (the WAL scan computes record boundaries for us).
    enum Corruption {
        FlipLastByte,
        TruncateTail,
        FlipMidFile,
    }
    for (label, kind) in [
        ("bit-flip in last record", Corruption::FlipLastByte),
        ("truncated mid-record", Corruption::TruncateTail),
        ("bit-flip mid-file", Corruption::FlipMidFile),
    ] {
        let dir = scratch("corrupt");
        let mut durable = DurableServer::create(
            scheme.clone(),
            1.0,
            4,
            &dir,
            DurableOptions::log_only(),
            &Obs::disabled(),
        )
        .expect("create durable server");
        for frame in &frames {
            durable.receive_sequenced(frame.clone()).expect("ingest");
        }
        let wal_path = durable.wal_path().to_path_buf();
        drop(durable);

        let clean = vcps::durable::read_wal(&wal_path).expect("scan clean wal");
        assert_eq!(clean.records.len(), frames.len(), "one record per frame");
        // Byte offset where record k starts: magic, then
        // `header ‖ payload` per record.
        let record_start = |k: usize| {
            8 + clean.records[..k]
                .iter()
                .map(|r| 16 + r.len())
                .sum::<usize>()
        };

        let mut wal = std::fs::read(&wal_path).expect("read wal");
        let survivors = match kind {
            Corruption::FlipLastByte => {
                let last = wal.len() - 1;
                wal[last] ^= 0x40;
                frames.len() - 1
            }
            Corruption::TruncateTail => {
                wal.truncate(wal.len() - 3);
                frames.len() - 1
            }
            Corruption::FlipMidFile => {
                // First payload byte of the third record: records 0 and
                // 1 survive, everything after is unreachable.
                wal[record_start(2) + 16] ^= 0x01;
                2
            }
        };
        std::fs::write(&wal_path, &wal).expect("rewrite wal");

        let (recovered, report) = DurableServer::recover(
            scheme.clone(),
            1.0,
            4,
            &dir,
            DurableOptions::log_only(),
            &Obs::disabled(),
        )
        .unwrap_or_else(|e| panic!("{label}: recovery must not fail, got {e}"));
        assert!(
            report.tail_error.is_some(),
            "{label}: corruption must surface as a typed tail error"
        );
        assert_eq!(
            report.replayed_records, survivors as u64,
            "{label}: recovery must land exactly on the longest valid prefix"
        );

        // The recovered server equals a fresh one fed only the
        // surviving prefix — corruption never invents or loses state.
        let mut prefix = ShardedServer::new(scheme.clone(), 1.0, 4).expect("prefix server");
        for frame in frames.iter().take(report.replayed_records as usize) {
            prefix.receive_sequenced(frame.clone());
        }
        assert_eq!(
            recovered.server().checkpoint(0),
            prefix.checkpoint(0),
            "{label}: recovered state must equal the valid-prefix state"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A checkpoint "ahead of" a corrupted log must be ignored: state is
/// only trusted as far as the log that produced it, so recovery falls
/// back to replaying the surviving prefix from scratch.
#[test]
fn checkpoint_past_corrupted_log_is_ignored() {
    let frames = workload(6, 0xCAFE);
    let scheme = Scheme::variable(2, 3.0, 9).expect("valid scheme");
    let dir = scratch("stale-ckpt");

    let mut durable = DurableServer::create(
        scheme.clone(),
        1.0,
        2,
        &dir,
        DurableOptions::log_only().with_checkpoint_every(1),
        &Obs::disabled(),
    )
    .expect("create durable server");
    for frame in &frames {
        durable.receive_sequenced(frame.clone()).expect("ingest");
    }
    let wal_path = durable.wal_path().to_path_buf();
    drop(durable);

    // Chop the log roughly in half: every checkpoint taken past the cut
    // now describes state the surviving log cannot vouch for.
    let mut wal = std::fs::read(&wal_path).expect("read wal");
    wal.truncate(8 + (wal.len() - 8) / 2);
    std::fs::write(&wal_path, &wal).expect("rewrite wal");

    let (recovered, report) = DurableServer::recover(
        scheme.clone(),
        1.0,
        2,
        &dir,
        DurableOptions::log_only(),
        &Obs::disabled(),
    )
    .expect("recovery");
    let total = report.checkpoint_records + report.replayed_records;
    assert!(
        total < frames.len() as u64,
        "truncation must lose tail records"
    );

    let mut prefix = ShardedServer::new(scheme.clone(), 1.0, 2).expect("prefix server");
    for frame in frames.iter().take(total as usize) {
        prefix.receive_sequenced(frame.clone());
    }
    assert_eq!(
        recovered.server().checkpoint(total),
        prefix.checkpoint(total),
        "recovered state must equal the surviving-prefix state"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Group-commit prefix durability (DESIGN.md §18): for any record
    /// sequence, flush policy, and crash point, a crash loses at most
    /// the buffered tail — the on-disk log is an exact *prefix* of the
    /// appended frames with a **clean** tail (a lost buffered record is
    /// absent, never torn), the policy bounds how long that lost tail
    /// can be, and recovery replays the prefix into a state identical
    /// to a never-crashed server fed the same prefix.
    #[test]
    fn group_commit_crash_recovers_exact_durable_prefix(
        seed in any::<u64>(),
        rsus in 2u64..6,
        crash_at in any::<usize>(),
        policy_kind in 0u8..4,
        every_n in 1u64..6,
        every_bytes in 1u64..2048,
        flush_before_crash in any::<bool>(),
    ) {
        let policy = match policy_kind {
            0 => FlushPolicy::PerRecord,
            1 => FlushPolicy::EveryRecords(every_n),
            2 => FlushPolicy::EveryBytes(every_bytes),
            _ => FlushPolicy::Manual,
        };
        let frames = workload(rsus, seed);
        let crash = crash_at % (frames.len() + 1);
        let scheme = Scheme::variable(2, 3.0, 9).expect("valid scheme");
        let dir = scratch("group-commit");

        let mut durable = DurableServer::create(
            scheme.clone(),
            1.0,
            2,
            &dir,
            DurableOptions::log_only().with_flush(policy),
            &Obs::disabled(),
        )
        .expect("create durable server");
        for frame in &frames[..crash] {
            durable.receive_sequenced(frame.clone()).expect("ingest");
        }
        if flush_before_crash {
            durable.flush_wal().expect("flush");
        }
        let wal_path = durable.wal_path().to_path_buf();
        // Crash: drop deliberately does NOT flush, so the buffered
        // tail vanishes with the process.
        drop(durable);

        let scan = vcps::durable::read_wal(&wal_path).expect("scan wal");
        prop_assert!(
            scan.tail_error.is_none(),
            "losing the buffer must leave a clean tail, got {:?}",
            scan.tail_error
        );
        let durable_records = scan.records.len();
        prop_assert!(durable_records <= crash);
        // The surviving records are byte-identical to the first
        // `durable_records` appended frames — a prefix, never a
        // reordering or a partial record.
        for (record, frame) in scan.records.iter().zip(&frames[..crash]) {
            let encoded = frame.encode();
            prop_assert_eq!(&record[..], &encoded[..]);
        }
        // The policy bounds the lost tail.
        if flush_before_crash {
            prop_assert_eq!(durable_records, crash, "explicit flush makes everything durable");
        } else {
            match policy {
                FlushPolicy::PerRecord => prop_assert_eq!(durable_records, crash),
                FlushPolicy::EveryRecords(n) => {
                    prop_assert_eq!(durable_records, crash - crash % n as usize)
                }
                FlushPolicy::EveryBytes(threshold) => {
                    let buffered: u64 = frames[durable_records..crash]
                        .iter()
                        .map(|f| 16 + f.encode().len() as u64)
                        .sum();
                    prop_assert!(
                        buffered < threshold,
                        "an unflushed tail of {buffered} bytes contradicts threshold {threshold}"
                    );
                }
                FlushPolicy::Manual => prop_assert_eq!(durable_records, 0),
            }
        }

        let (recovered, report) = DurableServer::recover(
            scheme.clone(),
            1.0,
            2,
            &dir,
            DurableOptions::log_only(),
            &Obs::disabled(),
        )
        .expect("recovery");
        prop_assert!(report.tail_error.is_none());
        prop_assert_eq!(
            report.checkpoint_records + report.replayed_records,
            durable_records as u64
        );

        let mut prefix = ShardedServer::new(scheme, 1.0, 2).expect("prefix server");
        for frame in frames.iter().take(durable_records) {
            prefix.receive_sequenced(frame.clone());
        }
        prop_assert_eq!(
            recovered.server().checkpoint(durable_records as u64),
            prefix.checkpoint(durable_records as u64),
            "recovered state must equal the durable-prefix state"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
