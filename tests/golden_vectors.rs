//! Golden wire vectors: one frozen binary frame per protocol tag.
//!
//! The `tests/data/*.bin` files are the wire format's source of truth —
//! a deployed fleet of RSUs and servers can only interoperate across
//! versions if these bytes never change. Each test re-encodes a fixed
//! frame and asserts it is byte-identical to the checked-in vector, then
//! decodes the vector and round-trips it. A mismatch means the wire
//! format changed: that is a breaking protocol revision, not a test to
//! update casually.
//!
//! To regenerate after a *deliberate* format change:
//! `cargo test --test golden_vectors -- --ignored regenerate`

use std::path::PathBuf;

use vcps::sim::pki::TrustedAuthority;
use vcps::sim::protocol::{
    BatchUpload, BitReport, CheckpointSet, PeriodUpload, PeriodUploadRef, Query, SequencedUpload,
    ServerCheckpoint,
};
use vcps::sim::{MacAddress, SimError, SimRsu};
use vcps::{BitArray, RsuId};

fn data_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/data")
        .join(name)
}

/// Tag 1 — a query from a deterministic RSU/authority pair (the
/// certificate is a keyed hash, so fixed seeds give fixed bytes).
fn golden_query() -> Query {
    let authority = TrustedAuthority::new(0x60_1D);
    SimRsu::new(RsuId(3), 1 << 10, &authority)
        .expect("valid size")
        .query()
}

/// Tag 2 — a bit report with a locally-administered one-time MAC.
fn golden_report() -> BitReport {
    BitReport {
        mac: MacAddress([0x02, 0xDE, 0xAD, 0xBE, 0xEF, 0x01]),
        index: 0x0123_4567,
    }
}

/// Tag 3 — a dense period upload (fill well above the sparse cutoff).
fn golden_upload_dense() -> PeriodUpload {
    PeriodUpload {
        rsu: RsuId(7),
        counter: 40,
        bits: BitArray::from_indices(64, (0..32usize).map(|i| i * 2)).expect("in range"),
    }
}

/// Tag 4 — a sparse period upload (3 set bits in 1024 forces the
/// index-list encoding in `encode_compact`).
fn golden_upload_sparse() -> PeriodUpload {
    PeriodUpload {
        rsu: RsuId(9),
        counter: 3,
        bits: BitArray::from_indices(1024, [5usize, 600, 1023]).expect("in range"),
    }
}

/// Tag 5 — a sequenced upload wrapping the sparse frame.
fn golden_sequenced() -> SequencedUpload {
    SequencedUpload {
        seq: 11,
        upload: golden_upload_sparse(),
    }
}

/// Tag 6 — a batch of two sequenced uploads (ascending RSU ids, mixed
/// dense/sparse inner encodings, per-record checksums).
fn golden_batch() -> BatchUpload {
    BatchUpload::new(vec![
        SequencedUpload {
            seq: 4,
            upload: golden_upload_dense(),
        },
        golden_sequenced(),
    ])
    .expect("strictly increasing (rsu, seq)")
}

/// Tag 7 — one shard's durable snapshot: EWMA alpha, history and
/// sequence tables keyed by ascending RSU id, and both upload shapes.
fn golden_checkpoint() -> ServerCheckpoint {
    ServerCheckpoint {
        alpha: 0.5,
        history: vec![(RsuId(7), 40.0), (RsuId(9), 3.0)],
        seqs: vec![(RsuId(7), 4), (RsuId(9), 11)],
        uploads: vec![golden_upload_dense(), golden_upload_sparse()],
    }
}

/// Tag 8 — a two-shard checkpoint set (one populated shard, one empty)
/// stamped with the WAL position it covers.
fn golden_checkpoint_set() -> CheckpointSet {
    CheckpointSet {
        frames_applied: 2,
        shards: vec![
            golden_checkpoint(),
            ServerCheckpoint {
                alpha: 0.5,
                history: Vec::new(),
                seqs: Vec::new(),
                uploads: Vec::new(),
            },
        ],
    }
}

/// Every golden vector: `(file name, frozen wire bytes)`.
fn vectors() -> Vec<(&'static str, Vec<u8>)> {
    vec![
        ("query.bin", golden_query().encode().to_vec()),
        ("report.bin", golden_report().encode().to_vec()),
        ("upload_dense.bin", golden_upload_dense().encode().to_vec()),
        (
            "upload_sparse.bin",
            golden_upload_sparse().encode_compact().to_vec(),
        ),
        ("sequenced.bin", golden_sequenced().encode().to_vec()),
        ("batch.bin", golden_batch().encode().to_vec()),
        ("ckpt_server.bin", golden_checkpoint().encode().to_vec()),
        ("ckpt_set.bin", golden_checkpoint_set().encode().to_vec()),
    ]
}

/// Builds an upload header by hand — these frames are unrepresentable
/// through the encoders (the types cannot hold a zero-length or
/// 2^32-bit array), so the error vectors are raw bytes.
fn err_upload_header(tag: u8, rsu: u64, len: u64, ones: Option<u64>) -> Vec<u8> {
    let mut v = vec![tag];
    v.extend_from_slice(&rsu.to_be_bytes());
    v.extend_from_slice(&0u64.to_be_bytes()); // counter
    v.extend_from_slice(&len.to_be_bytes());
    if let Some(o) = ones {
        v.extend_from_slice(&o.to_be_bytes());
    }
    v
}

/// Error-path vectors: `(file name, frozen malformed bytes)`. Every
/// frame here claims an out-of-bounds bit array length — zero, or past
/// the 2^32 `MAX_UPLOAD_BITS` cap — and must be rejected identically by
/// the dense and sparse decoders, owned and borrowed alike, *before*
/// any allocation sized from the hostile length field.
fn error_vectors() -> Vec<(&'static str, Vec<u8>)> {
    const OVER_CAP: u64 = (1 << 32) + 64;
    vec![
        (
            "err_upload_dense_zero.bin",
            err_upload_header(3, 7, 0, None),
        ),
        (
            "err_upload_sparse_zero.bin",
            err_upload_header(4, 9, 0, Some(0)),
        ),
        (
            "err_upload_dense_overlong.bin",
            err_upload_header(3, 7, OVER_CAP, None),
        ),
        (
            "err_upload_sparse_overlong.bin",
            err_upload_header(4, 9, OVER_CAP, Some(0)),
        ),
    ]
}

#[test]
fn golden_vectors_freeze_the_wire_format() {
    for (name, encoded) in vectors() {
        let frozen = std::fs::read(data_path(name)).unwrap_or_else(|e| {
            panic!("missing golden vector {name}: {e} (run the ignored `regenerate` test once)")
        });
        assert_eq!(
            encoded, frozen,
            "{name}: encoder output diverged from the frozen wire bytes — \
             this is a breaking protocol change"
        );
    }
}

#[test]
fn golden_vectors_decode_and_round_trip() {
    let query = Query::decode(&std::fs::read(data_path("query.bin")).unwrap()).unwrap();
    assert_eq!(query.rsu, RsuId(3));
    assert_eq!(query.encode().to_vec(), golden_query().encode().to_vec());

    let report = BitReport::decode(&std::fs::read(data_path("report.bin")).unwrap()).unwrap();
    assert_eq!(report, golden_report());
    assert_eq!(report.encode(), golden_report().encode());

    let dense =
        PeriodUpload::decode(&std::fs::read(data_path("upload_dense.bin")).unwrap()).unwrap();
    assert_eq!(dense, golden_upload_dense());

    // The sparse frame decodes to the *same* upload a dense frame would —
    // the compact encoding is a transport detail, not a data change.
    let sparse =
        PeriodUpload::decode(&std::fs::read(data_path("upload_sparse.bin")).unwrap()).unwrap();
    assert_eq!(sparse, golden_upload_sparse());
    assert_eq!(
        PeriodUpload::decode(&golden_upload_sparse().encode()).unwrap(),
        sparse
    );

    let sequenced =
        SequencedUpload::decode(&std::fs::read(data_path("sequenced.bin")).unwrap()).unwrap();
    assert_eq!(sequenced, golden_sequenced());

    let batch = BatchUpload::decode(&std::fs::read(data_path("batch.bin")).unwrap()).unwrap();
    assert_eq!(batch.frames(), golden_batch().frames());
    assert_eq!(batch.encode(), golden_batch().encode());

    let ckpt =
        ServerCheckpoint::decode(&std::fs::read(data_path("ckpt_server.bin")).unwrap()).unwrap();
    assert_eq!(ckpt, golden_checkpoint());
    assert_eq!(ckpt.encode(), golden_checkpoint().encode());

    let set = CheckpointSet::decode(&std::fs::read(data_path("ckpt_set.bin")).unwrap()).unwrap();
    assert_eq!(set, golden_checkpoint_set());
    assert_eq!(set.encode(), golden_checkpoint_set().encode());
}

#[test]
fn golden_error_vectors_reject_with_the_frozen_reason() {
    for (name, bytes) in error_vectors() {
        let frozen = std::fs::read(data_path(name)).unwrap_or_else(|e| {
            panic!("missing golden vector {name}: {e} (run the ignored `regenerate` test once)")
        });
        assert_eq!(
            bytes, frozen,
            "{name}: error vector construction diverged from the frozen bytes"
        );
        let owned = PeriodUpload::decode(&frozen);
        let borrowed = PeriodUploadRef::decode_ref(&frozen);
        for (path, result) in [("owned", owned.err()), ("borrowed", borrowed.err())] {
            match result {
                Some(SimError::MalformedMessage { reason }) => assert_eq!(
                    reason, "invalid bit array length in upload",
                    "{name} ({path}): rejection reason drifted — the \
                     zero-length / over-cap check is no longer unified"
                ),
                other => panic!("{name} ({path}): expected MalformedMessage, got {other:?}"),
            }
        }
    }
}

#[test]
fn golden_vectors_cover_every_protocol_tag() {
    let tags: Vec<u8> = vectors().iter().map(|(_, bytes)| bytes[0]).collect();
    assert_eq!(
        tags,
        vec![1, 2, 3, 4, 5, 6, 7, 8],
        "one vector per wire tag"
    );
}

/// Regenerates every golden vector. Ignored by default: running it is a
/// deliberate act that rewrites the protocol's source of truth.
#[test]
#[ignore = "rewrites the frozen wire vectors"]
fn regenerate() {
    let dir = data_path("");
    std::fs::create_dir_all(&dir).expect("create tests/data");
    for (name, encoded) in vectors().into_iter().chain(error_vectors()) {
        std::fs::write(data_path(name), &encoded).expect("write golden vector");
        println!("wrote {name} ({} bytes)", encoded.len());
    }
}
