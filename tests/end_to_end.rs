//! Cross-crate integration tests: the full measurement pipeline from
//! vehicle identities through wire messages to server estimates.

use vcps::sim::synthetic::SyntheticPair;
use vcps::{CoreError, PairRunner, RsuId, Scheme, SelectionRule, VehicleIdentity};

/// Helper: relative error of a full simulated period.
fn run_error(scheme: &Scheme, n_x: u64, n_y: u64, n_c: u64, seed: u64) -> f64 {
    let workload = SyntheticPair::generate(n_x, n_y, n_c, seed);
    PairRunner::new(scheme.clone(), RsuId(1), RsuId(2))
        .run(&workload)
        .expect("run succeeds")
        .relative_error()
        .expect("n_c > 0")
}

#[test]
fn variable_scheme_accuracy_across_skews() {
    let scheme = Scheme::variable(2, 8.0, 77).unwrap();
    // Average over seeds to control the run-to-run noise; analytic sd at
    // these parameters (f̄ = 8) is 5–15% per run.
    for (ratio, tolerance) in [(1u64, 0.10), (10, 0.15), (50, 0.25)] {
        let mean_err: f64 = (0..5)
            .map(|s| run_error(&scheme, 10_000, ratio * 10_000, 2_000, s))
            .sum::<f64>()
            / 5.0;
        assert!(
            mean_err < tolerance,
            "ratio {ratio}: mean error {mean_err} over tolerance {tolerance}"
        );
    }
}

#[test]
fn deployment_is_deterministic_given_seed() {
    let build = || {
        let scheme = Scheme::variable(2, 3.0, 123).unwrap();
        let mut d = scheme
            .deploy(&[(RsuId(1), 500.0), (RsuId(2), 5_000.0)])
            .unwrap();
        for i in 0..500u64 {
            let v = VehicleIdentity::from_raw(i, i * 31);
            d.record(&v, RsuId(1)).unwrap();
            d.record(&v, RsuId(2)).unwrap();
        }
        d.estimate_pair(RsuId(1), RsuId(2)).unwrap()
    };
    assert_eq!(build(), build());
}

#[test]
fn different_hash_seeds_give_independent_estimates() {
    let workload = SyntheticPair::generate(2_000, 2_000, 500, 3);
    let a = PairRunner::new(Scheme::variable(2, 3.0, 1).unwrap(), RsuId(1), RsuId(2))
        .run(&workload)
        .unwrap();
    let b = PairRunner::new(Scheme::variable(2, 3.0, 2).unwrap(), RsuId(1), RsuId(2))
        .run(&workload)
        .unwrap();
    assert_ne!(a.estimate.v_x, b.estimate.v_x);
}

#[test]
fn literal_selection_rule_degrades_pairwise_accuracy() {
    // The paper's literal formula X[H(R_x) mod s] couples all vehicles'
    // logical-slot choices at a pair of RSUs: either every common vehicle
    // repeats its bit (n_s = n_c) or none does (n_s = 0), instead of the
    // binomial mixing the estimator assumes. Averaged over RSU pairs the
    // estimate is far more dispersed.
    let spread = |rule: SelectionRule| -> f64 {
        let scheme = Scheme::variable(2, 4.0, 5).unwrap().with_rule(rule);
        let workload = SyntheticPair::generate(4_000, 4_000, 1_000, 9);
        // Vary the RSU ids: under the literal rule the salt-index pair
        // (H(R_a) mod s, H(R_b) mod s) flips between runs.
        (0..12u64)
            .map(|k| {
                PairRunner::new(scheme.clone(), RsuId(100 + k), RsuId(200 + k))
                    .run(&workload)
                    .unwrap()
                    .relative_error()
                    .unwrap()
            })
            .sum::<f64>()
            / 12.0
    };
    let per_vehicle = spread(SelectionRule::PerVehicle);
    let literal = spread(SelectionRule::PerRsuLiteral);
    assert!(
        literal > 3.0 * per_vehicle,
        "literal rule mean error {literal} should dwarf per-vehicle {per_vehicle}"
    );
}

#[test]
fn saturation_error_path_is_typed() {
    // A tiny fixed deployment saturates; the strict API says so, the
    // clamped API produces a flagged value.
    let scheme = Scheme::fixed(2, 16, 3).unwrap();
    let mut d = scheme
        .deploy(&[(RsuId(1), 16.0), (RsuId(2), 16.0)])
        .unwrap();
    // Note: keys must differ from ids — v ⊕ K_v is the hash input, so a
    // vehicle with id == key would mask to the constant 0.
    for i in 0..400u64 {
        let v = VehicleIdentity::from_raw(i, i.wrapping_mul(0x9E37) ^ 0xB0B);
        d.record(&v, RsuId(1)).unwrap();
        d.record(&v, RsuId(2)).unwrap();
    }
    match d.estimate_pair(RsuId(1), RsuId(2)) {
        Err(CoreError::Saturated { .. }) => {}
        other => panic!("expected saturation, got {other:?}"),
    }
    let clamped = d.estimate_pair_or_clamp(RsuId(1), RsuId(2)).unwrap();
    assert!(clamped.clamped);
    assert!(clamped.n_c.is_finite());
}

#[test]
fn multi_period_resizing_tracks_traffic() {
    use vcps::VolumeHistory;
    let scheme = Scheme::variable(2, 3.0, 7).unwrap();
    let mut d = scheme.deploy(&[(RsuId(1), 1_000.0)]).unwrap();
    let initial = d.sketch(RsuId(1)).unwrap().len();

    // Period 1: 16x the expected traffic shows up.
    let mut history = VolumeHistory::new(1.0);
    for i in 0..16_000u64 {
        d.record(&VehicleIdentity::from_raw(i, i), RsuId(1))
            .unwrap();
    }
    history.update(RsuId(1), d.sketch(RsuId(1)).unwrap().count() as f64);
    d.resize_from_history(&history).unwrap();
    let resized = d.sketch(RsuId(1)).unwrap().len();
    assert!(
        resized >= 16 * initial,
        "array should grow with traffic: {initial} -> {resized}"
    );
    assert_eq!(d.sketch(RsuId(1)).unwrap().count(), 0, "fresh period");
}

#[test]
fn city_wide_all_pairs_estimates_track_ground_truth() {
    use vcps::sim::synthetic::SyntheticCity;
    // Five RSUs with heterogeneous visit rates; 40k vehicles.
    let probs = [0.5, 0.25, 0.12, 0.4, 0.08];
    let city = SyntheticCity::generate(&probs, 40_000, 11);
    let scheme = Scheme::variable(2, 8.0, 13).unwrap();
    let volumes: Vec<(RsuId, f64)> = (0..city.rsu_count())
        .map(|j| (RsuId(j as u64), city.volume(j) as f64))
        .collect();
    let mut deployment = scheme.deploy(&volumes).unwrap();
    for (identity, visited) in city.vehicles() {
        for &j in visited {
            deployment.record(identity, RsuId(j as u64)).unwrap();
        }
    }
    let estimates = deployment.estimate_all_pairs().unwrap();
    assert_eq!(estimates.len(), 10); // C(5, 2)
    let mut total_rel = 0.0;
    for (a, b, est) in &estimates {
        let truth = city.overlap(a.0 as usize, b.0 as usize) as f64;
        total_rel += est.relative_error(truth).unwrap();
    }
    let mean_rel = total_rel / estimates.len() as f64;
    assert!(
        mean_rel < 0.25,
        "mean relative error across the city: {mean_rel}"
    );
}

#[test]
fn facade_reexports_are_usable_together() {
    // Types from different sub-crates interoperate through the facade.
    let scheme: vcps::Scheme = Scheme::variable(3, 2.0, 1).unwrap();
    let sketch: vcps::RsuSketch = vcps::RsuSketch::new(RsuId(9), 64).unwrap();
    let _: &vcps::BitArray = sketch.bits();
    assert_eq!(scheme.s(), 3);
    let params = vcps::PairParams::new(10.0, 10.0, 1.0, 8.0, 8.0, 2.0).unwrap();
    assert!(vcps::analysis::privacy::preserved_privacy(&params) <= 1.0);
}
