//! Differential conformance for the zero-copy borrowed wire views
//! (DESIGN.md §18).
//!
//! The contract is *accept parity*: a wire image is accepted by a
//! borrowed decoder exactly when the owned decoder of the same frame
//! type accepts it, and whenever both accept, every borrowed accessor
//! agrees with the owned decode field for field. The suite checks this
//! on every golden vector under `tests/data/`, on every prefix
//! truncation of those vectors, on a single-bit-flip sweep, and under
//! randomized mutation (truncation, byte corruption, batch frame
//! reordering and duplication) — and the borrowed decoders must never
//! panic on any input, hostile or not.

use proptest::prelude::*;

use vcps::durable::fnv1a_64;
use vcps::sim::protocol::{
    BatchUpload, BatchUploadRef, PeriodUpload, PeriodUploadRef, SequencedUpload, SequencedUploadRef,
};
use vcps::{BitArray, RsuId};

fn data(name: &str) -> Vec<u8> {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/data")
        .join(name);
    std::fs::read(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

const GOLDEN: [&str; 8] = [
    "query.bin",
    "report.bin",
    "upload_dense.bin",
    "upload_sparse.bin",
    "sequenced.bin",
    "batch.bin",
    "ckpt_server.bin",
    "ckpt_set.bin",
];

/// Owned/borrowed parity for one wire image against all three hot
/// frame decoders. Rejection is fine — it must just be symmetric.
fn check_parity(wire: &[u8]) {
    check_period_parity(wire);
    check_sequenced_parity(wire);
    check_batch_parity(wire);
}

fn check_period_parity(wire: &[u8]) {
    let owned = PeriodUpload::decode(wire);
    let view = PeriodUploadRef::decode_ref(wire);
    assert_eq!(
        owned.is_ok(),
        view.is_ok(),
        "period accept parity on {} bytes (owned: {owned:?})",
        wire.len()
    );
    if let (Ok(owned), Ok(view)) = (owned, view) {
        assert_eq!(view.rsu(), owned.rsu);
        assert_eq!(view.counter(), owned.counter);
        assert_eq!(view.bits_len(), owned.bits.len());
        assert_eq!(view.count_ones(), owned.bits.count_ones());
        assert!(
            view.matches(&owned),
            "accepted view must match its owned twin"
        );
        assert_eq!(view.to_owned_upload(), owned);
    }
}

fn check_sequenced_parity(wire: &[u8]) {
    let owned = SequencedUpload::decode(wire);
    let view = SequencedUploadRef::decode_ref(wire);
    assert_eq!(
        owned.is_ok(),
        view.is_ok(),
        "sequenced accept parity on {} bytes",
        wire.len()
    );
    if let (Ok(owned), Ok(view)) = (owned, view) {
        assert_eq!(view.seq(), owned.seq);
        assert!(view.upload().matches(&owned.upload));
        assert_eq!(view.to_owned_upload(), owned);
    }
}

fn check_batch_parity(wire: &[u8]) {
    let owned = BatchUpload::decode(wire);
    let view = BatchUploadRef::decode_ref(wire);
    assert_eq!(
        owned.is_ok(),
        view.is_ok(),
        "batch accept parity on {} bytes",
        wire.len()
    );
    if let (Ok(owned), Ok(view)) = (owned, view) {
        assert_eq!(view.len(), owned.frames().len());
        for (frame_view, frame) in view.frames().zip(owned.frames()) {
            assert_eq!(frame_view.seq(), frame.seq);
            assert!(frame_view.upload().matches(&frame.upload));
        }
        assert_eq!(view.to_owned_batch(), owned);
    }
}

/// Assembles a batch wire image from frames *in the given order*, with
/// valid per-record checksums — canonical when the order is, hostile
/// (out-of-order / duplicate keys) when it is not. Lets the mutation
/// tests probe the ordering validation without the owned encoder
/// sorting the hostility away.
fn raw_batch_wire(frames: &[SequencedUpload]) -> Vec<u8> {
    let mut wire = vec![6u8]; // TAG_BATCH
    wire.extend((frames.len() as u64).to_be_bytes());
    for frame in frames {
        let inner = frame.encode();
        wire.extend((inner.len() as u64).to_be_bytes());
        wire.extend(fnv1a_64(&inner).to_be_bytes());
        wire.extend(inner.iter());
    }
    wire
}

#[test]
fn golden_vectors_decode_identically_borrowed_and_owned() {
    for name in GOLDEN {
        check_parity(&data(name));
    }
    // The hot vectors must actually be accepted — an all-reject suite
    // would satisfy parity vacuously.
    assert!(PeriodUploadRef::decode_ref(&data("upload_dense.bin")).is_ok());
    assert!(PeriodUploadRef::decode_ref(&data("upload_sparse.bin")).is_ok());
    assert!(SequencedUploadRef::decode_ref(&data("sequenced.bin")).is_ok());
    assert!(BatchUploadRef::decode_ref(&data("batch.bin")).is_ok());
}

/// Every prefix of every golden vector: truncation anywhere — inside
/// the header, a length field, a checksum, or a payload — must reject
/// on both sides or accept on both sides (only the full image accepts).
#[test]
fn golden_vector_truncations_never_split_the_decoders() {
    for name in GOLDEN {
        let wire = data(name);
        for cut in 0..wire.len() {
            check_parity(&wire[..cut]);
        }
    }
}

/// Exhaustive single-bit-flip sweep over the hot golden vectors: a
/// flipped tag, length, checksum, index, or payload byte must leave
/// the owned and borrowed decoders in agreement (both reject, or both
/// accept the now-different-but-valid frame with equal fields).
#[test]
fn golden_vector_bit_flips_never_split_the_decoders() {
    for name in [
        "upload_dense.bin",
        "upload_sparse.bin",
        "sequenced.bin",
        "batch.bin",
    ] {
        let wire = data(name);
        for i in 0..wire.len() {
            for bit in 0..8 {
                let mut flipped = wire.clone();
                flipped[i] ^= 1 << bit;
                check_parity(&flipped);
            }
        }
    }
}

fn arb_upload() -> impl Strategy<Value = PeriodUpload> {
    (
        1u64..1_000,
        any::<u64>(),
        1usize..=512,
        prop::collection::vec(any::<u32>(), 0..64),
    )
        .prop_map(|(rsu, counter, len, raw)| {
            let bits = BitArray::from_indices(len, raw.into_iter().map(|v| v as usize % len))
                .expect("indices in range");
            PeriodUpload {
                rsu: RsuId(rsu),
                counter,
                bits,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn truncated_random_frames_never_split_the_decoders(
        upload in arb_upload(),
        seq in any::<u64>(),
        cut_frac in 0.0f64..1.0,
        sparse in any::<bool>(),
    ) {
        let period_wire = if sparse {
            upload.encode_compact()
        } else {
            upload.encode()
        };
        let cut = (period_wire.len() as f64 * cut_frac) as usize;
        check_parity(&period_wire[..cut]);
        check_parity(&period_wire);

        let sequenced = SequencedUpload { seq, upload };
        let seq_wire = sequenced.encode();
        let cut = (seq_wire.len() as f64 * cut_frac) as usize;
        check_parity(&seq_wire[..cut]);
        check_parity(&seq_wire);

        let batch = BatchUpload::new(vec![sequenced]).expect("single frame");
        let batch_wire = batch.encode();
        let cut = (batch_wire.len() as f64 * cut_frac) as usize;
        check_parity(&batch_wire[..cut]);
        check_parity(&batch_wire);
    }

    #[test]
    fn corrupted_random_frames_never_split_the_decoders(
        upload in arb_upload(),
        seq in any::<u64>(),
        byte in any::<usize>(),
        mask in 1u8..=255,
        sparse in any::<bool>(),
    ) {
        let mut period_wire = if sparse {
            upload.encode_compact().to_vec()
        } else {
            upload.encode().to_vec()
        };
        let i = byte % period_wire.len();
        period_wire[i] ^= mask;
        check_parity(&period_wire);

        let batch = BatchUpload::new(vec![SequencedUpload { seq, upload }])
            .expect("single frame");
        let mut batch_wire = batch.encode().to_vec();
        let i = byte % batch_wire.len();
        batch_wire[i] ^= mask;
        check_parity(&batch_wire);
    }

    #[test]
    fn reordered_batch_frames_never_split_the_decoders(
        a in arb_upload(),
        b in arb_upload(),
        seq_a in any::<u64>(),
        seq_b in any::<u64>(),
        order in 0usize..4,
    ) {
        let fa = SequencedUpload { seq: seq_a, upload: a };
        let fb = SequencedUpload { seq: seq_b, upload: b };
        // In-order, reversed, and duplicated-key layouts; every record
        // carries a valid checksum, so only the (rsu, seq) ordering
        // validation distinguishes them.
        let frames = match order {
            0 => vec![fa.clone(), fb.clone()],
            1 => vec![fb.clone(), fa.clone()],
            2 => vec![fa.clone(), fa.clone()],
            _ => vec![fb.clone(), fb.clone()],
        };
        let wire = raw_batch_wire(&frames);
        check_parity(&wire);

        // The canonically sorted two-frame batch must be accepted by
        // both decoders whenever its keys are distinct.
        let key = |f: &SequencedUpload| (f.upload.rsu, f.seq);
        if key(&fa) != key(&fb) {
            let mut sorted = vec![fa, fb];
            sorted.sort_by_key(key);
            let wire = raw_batch_wire(&sorted);
            prop_assert!(BatchUpload::decode(&wire).is_ok());
            check_parity(&wire);
        }
    }
}
