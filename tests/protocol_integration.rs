//! Protocol-level integration: PKI, wire messages, the discrete-event
//! engine, and a full Sioux Falls measurement period.

use vcps::roadnet::assignment::{all_or_nothing, pair_volumes, point_volumes};
use vcps::roadnet::{expand_vehicle_trips, sioux_falls};
use vcps::sim::engine::run_network_period;
use vcps::sim::pki::TrustedAuthority;
use vcps::sim::protocol::{BitReport, PeriodUpload, Query};
use vcps::sim::MacAddress;
use vcps::{RsuId, Scheme, SimError, SimRsu, SimVehicle, VehicleIdentity};

#[test]
fn full_query_answer_upload_cycle_over_the_wire() {
    let scheme = Scheme::variable(2, 3.0, 5).unwrap();
    let authority = TrustedAuthority::new(1);
    let mut rsu = SimRsu::new(RsuId(3), 1 << 10, &authority).unwrap();

    // Query travels over the wire to the vehicle...
    let query_wire = rsu.query().encode();
    let query = Query::decode(&query_wire).unwrap();

    // ...the vehicle answers over the wire...
    let mut vehicle = SimVehicle::new(VehicleIdentity::from_raw(7, 8), 99);
    let report_wire = vehicle
        .answer(&query, &scheme, &authority, 1 << 14)
        .unwrap()
        .encode();
    let report = BitReport::decode(&report_wire).unwrap();
    rsu.receive(&report).unwrap();

    // ...and the upload reaches the server intact.
    let upload = PeriodUpload::decode(&rsu.upload().encode()).unwrap();
    assert_eq!(upload.rsu, RsuId(3));
    assert_eq!(upload.counter, 1);
    assert_eq!(upload.bits.count_ones(), 1);
    assert!(upload.bits.get(report.index as usize));
}

#[test]
fn vehicles_stay_silent_toward_untrusted_rsus() {
    let scheme = Scheme::variable(2, 3.0, 5).unwrap();
    let good_ca = TrustedAuthority::new(1);
    let rogue_ca = TrustedAuthority::new(666);
    let rogue_rsu = SimRsu::new(RsuId(13), 1 << 10, &rogue_ca).unwrap();

    let mut vehicle = SimVehicle::new(VehicleIdentity::from_raw(7, 8), 99);
    let result = vehicle.answer(&rogue_rsu.query(), &scheme, &good_ca, 1 << 14);
    assert_eq!(
        result,
        Err(SimError::CertificateRejected { rsu: RsuId(13) })
    );
}

#[test]
fn reports_expose_only_mac_and_index() {
    // The whole privacy argument rests on the vehicle→RSU message
    // carrying nothing but a one-time MAC and a bit index; pin the wire
    // format so it cannot silently grow an identifier.
    let report = BitReport {
        mac: MacAddress([0x02, 1, 2, 3, 4, 5]),
        index: 0x0102_0304,
    };
    let wire = report.encode();
    assert_eq!(wire.len(), 1 + 6 + 8, "tag + MAC + index, nothing else");
}

#[test]
fn same_vehicle_uses_fresh_mac_each_answer() {
    let scheme = Scheme::variable(2, 3.0, 5).unwrap();
    let authority = TrustedAuthority::new(1);
    let rsu = SimRsu::new(RsuId(3), 1 << 10, &authority).unwrap();
    let mut vehicle = SimVehicle::new(VehicleIdentity::from_raw(7, 8), 99);
    let query = rsu.query();
    let a = vehicle
        .answer(&query, &scheme, &authority, 1 << 14)
        .unwrap();
    let b = vehicle
        .answer(&query, &scheme, &authority, 1 << 14)
        .unwrap();
    assert_eq!(a.index, b.index, "same bit for the same RSU");
    assert_ne!(a.mac, b.mac, "different link-layer identity");
}

#[test]
fn sioux_falls_period_estimates_track_assignment_ground_truth() {
    // End-to-end Table-I pipeline at 1/40 scale: assignment → vehicles →
    // DES → uploads → pairwise estimates vs ground truth.
    let net = sioux_falls::network();
    let trips = sioux_falls::trip_table();
    let assignment = all_or_nothing(&net, &trips, &net.free_flow_times());
    let subsample = 40.0;
    let vehicles = expand_vehicle_trips(&assignment, &trips, subsample);
    assert!(
        vehicles.len() > 5_000,
        "enough vehicles: {}",
        vehicles.len()
    );

    let truth_points = point_volumes(&assignment, &trips, net.node_count());
    let truth_pairs = pair_volumes(&assignment, &trips, net.node_count());
    let history: Vec<f64> = truth_points.iter().map(|v| v / subsample).collect();

    let scheme = Scheme::variable(2, 8.0, 17).unwrap();
    let run = run_network_period(
        &scheme,
        &net,
        &net.free_flow_times(),
        &vehicles,
        &history,
        600.0,
        3,
    )
    .unwrap();
    assert_eq!(run.server.upload_count(), net.node_count());

    // The heaviest pair (15, 10) carries the most common traffic; its
    // estimate should be in the right ballpark despite the small scale.
    let (x, y) = (sioux_falls::node_index(15), sioux_falls::node_index(10));
    let truth = truth_pairs[x * net.node_count() + y] / subsample;
    let estimate = run
        .server
        .estimate_or_clamp(RsuId(x as u64), RsuId(y as u64))
        .unwrap();
    let rel = estimate.relative_error(truth).unwrap();
    assert!(
        rel < 0.5,
        "estimate {} vs truth {truth} (rel {rel})",
        estimate.n_c
    );

    // Counters equal the number of vehicles whose route passes the node.
    let sketch_count = estimate.n_y.max(estimate.n_x);
    let expected = (truth_points[y] / subsample).round() as u64;
    let counter_rel = (sketch_count as f64 - expected as f64).abs() / (expected as f64);
    assert!(
        counter_rel < 0.05,
        "counter {sketch_count} vs expected {expected}"
    );
}

#[test]
fn missing_upload_is_a_typed_error() {
    let scheme = Scheme::variable(2, 3.0, 5).unwrap();
    let server = vcps::CentralServer::new(scheme, 0.5).unwrap();
    assert_eq!(
        server.estimate(RsuId(1), RsuId(2)),
        Err(SimError::MissingUpload { rsu: RsuId(1) })
    );
}
