//! Property suite for checkpoint capture/restore (DESIGN.md §17).
//!
//! A [`ShardedServer`] checkpoint must be a *complete* serialization of
//! dedup and sequence state: restoring it — including through the wire
//! encoding — must reproduce the original server exactly, and a second
//! wave of uploads must draw the same verdict (Fresh / Duplicate /
//! Conflicting / Stale) from the restored server as from one that never
//! left memory.

use proptest::prelude::*;

use vcps::hash::splitmix64;
use vcps::sim::protocol::{CheckpointSet, PeriodUpload, SequencedUpload};
use vcps::sim::ShardedServer;
use vcps::{BitArray, RsuId, Scheme};

/// One seed-derived upload per RSU with varying sizes, fills, and
/// sequence numbers (same shape as the differential suites' workload).
fn wave(rsus: u64, seed: u64) -> Vec<SequencedUpload> {
    (1..=rsus)
        .map(|r| {
            let h = splitmix64(seed ^ r);
            let m = 1usize << (6 + (h % 5) as usize);
            let ones = (h >> 8) % (m as u64 / 2);
            let bits = BitArray::from_indices(
                m,
                (0..ones).map(|i| (splitmix64(h ^ i) % m as u64) as usize),
            )
            .expect("indices in range");
            SequencedUpload {
                seq: h % 3,
                upload: PeriodUpload {
                    rsu: RsuId(r),
                    counter: bits.count_ones() as u64 + h % 7,
                    bits,
                },
            }
        })
        .collect()
}

/// A follow-up wave engineered to hit every dedup verdict against the
/// first: re-sends (Duplicate), same-sequence rewrites (Conflicting),
/// lower sequences (Stale), higher sequences and new RSUs (Fresh).
fn probe_wave(first: &[SequencedUpload], seed: u64) -> Vec<SequencedUpload> {
    let mut probes = Vec::new();
    for (i, frame) in first.iter().enumerate() {
        let h = splitmix64(seed ^ i as u64 ^ 0x9E3779B9);
        let mut probe = frame.clone();
        match h % 4 {
            0 => {}                                       // identical -> Duplicate
            1 => probe.upload.counter ^= 1,               // same seq, new bytes -> Conflicting
            2 => probe.seq += 1,                          // advance -> Fresh
            _ => probe.seq = probe.seq.saturating_sub(1), // -> Stale (or Duplicate at 0)
        }
        probes.push(probe);
    }
    // An RSU the first wave never mentioned -> Fresh on both servers.
    probes.push(SequencedUpload {
        seq: 0,
        upload: PeriodUpload {
            rsu: RsuId(first.len() as u64 + 100),
            counter: 1,
            bits: BitArray::from_indices(64, [7usize]).expect("in range"),
        },
    });
    probes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Capture → wire round-trip → restore is the identity on server
    /// state, and dedup verdicts are history-free: the restored server
    /// judges a probe wave exactly as the original does.
    #[test]
    fn checkpoint_restore_round_trips_dedup_and_sequence_state(
        rsus in 1u64..16,
        shards in 1usize..9,
        seed in any::<u64>(),
    ) {
        let scheme = Scheme::variable(2, 3.0, 9).expect("valid scheme");
        let mut original = ShardedServer::new(scheme.clone(), 1.0, shards).expect("valid shards");
        for r in 1..=rsus {
            original.seed_history(RsuId(r), (splitmix64(r) % 1_000 + 10) as f64);
        }
        for frame in wave(rsus, seed) {
            original.receive_sequenced(frame);
        }

        // Capture, push through the frozen wire format, restore.
        let set = original.checkpoint(rsus);
        let decoded = CheckpointSet::decode(&set.encode()).expect("wire round-trip");
        prop_assert_eq!(&decoded, &set);
        let mut restored =
            ShardedServer::restore_from_checkpoint(scheme, &decoded).expect("restore");

        // The restored server *is* the original, byte for byte.
        prop_assert_eq!(restored.checkpoint(rsus), set);
        prop_assert_eq!(restored.upload_count(), original.upload_count());
        for r in 1..=rsus {
            prop_assert_eq!(restored.upload(RsuId(r)), original.upload(RsuId(r)));
        }

        // And it keeps judging like the original: every probe draws the
        // same verdict from both, leaving both in the same state.
        for probe in probe_wave(&wave(rsus, seed), seed) {
            let expected = original.receive_sequenced(probe.clone());
            let got = restored.receive_sequenced(probe.clone());
            prop_assert_eq!(
                got, expected,
                "verdict diverged for rsu {:?} seq {}", probe.upload.rsu, probe.seq
            );
        }
        prop_assert_eq!(restored.checkpoint(0), original.checkpoint(0));
    }
}
