//! Proof that the borrowed decode path is allocation-free (DESIGN.md
//! §18): a counting global allocator is armed around the hot region
//! and must observe **zero** heap allocations while a batch wire image
//! is validated, walked frame by frame, and compared against
//! already-owned uploads. The owned decode of the same bytes is
//! measured as a sanity check that the counter actually counts — and
//! re-ingesting a duplicate batch through `ShardedServer` must
//! allocate O(1) in the batch size (the outcomes vector), which is
//! checked by comparing counts at two batch sizes.
//!
//! The armed flag is thread-local so harness threads (stdout capture,
//! timers) can't contaminate the count; the counter itself is a global
//! atomic that only the armed thread increments.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

use vcps::sim::protocol::{BatchUpload, BatchUploadRef, PeriodUpload, SequencedUpload};
use vcps::sim::ShardedServer;
use vcps::{BitArray, RsuId, Scheme};

struct CountingAlloc;

thread_local! {
    static ARMED: Cell<bool> = const { Cell::new(false) };
}
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

/// True when the *current thread* is inside an armed region.
/// `try_with` because the allocator can be called during TLS teardown.
fn armed() -> bool {
    ARMED.try_with(Cell::get).unwrap_or(false)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if armed() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if armed() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if armed() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Runs `f` with the allocation counter armed, returning its result
/// and the number of heap allocations it performed.
fn allocs_during<T>(f: impl FnOnce() -> T) -> (T, usize) {
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.with(|armed| armed.set(true));
    let out = f();
    ARMED.with(|armed| armed.set(false));
    (out, ALLOCS.load(Ordering::SeqCst))
}

/// `rsus` sequenced uploads over 4096-bit arrays, alternating between
/// sparse-encodable (40 ones < 64 words) and dense-falling-back (80
/// ones > 64 words) fills so the armed walk exercises both payload
/// shapes.
fn batch(rsus: u64) -> BatchUpload {
    let frames: Vec<SequencedUpload> = (1..=rsus)
        .map(|r| {
            let ones = if r % 2 == 0 { 40u64 } else { 80 };
            let bits =
                BitArray::from_indices(4096, (0..ones).map(|i| (i * 51 + r) as usize % 4096))
                    .expect("indices in range");
            SequencedUpload {
                seq: 0,
                upload: PeriodUpload {
                    rsu: RsuId(r),
                    counter: bits.count_ones() as u64,
                    bits,
                },
            }
        })
        .collect();
    BatchUpload::new(frames).expect("distinct keys")
}

/// Validates the wire, walks every frame through every borrowed
/// accessor, and cross-checks against the owned uploads — the exact
/// read work an ingesting server performs before deciding what to
/// materialize.
fn walk_borrowed(wire: &[u8], owned: &BatchUpload) -> u64 {
    let view = BatchUploadRef::decode_ref(wire).expect("valid batch");
    let mut acc = 0u64;
    for (frame, reference) in view.frames().zip(owned.frames()) {
        let upload = frame.upload();
        acc += frame.seq() + upload.rsu().0 + upload.counter() + upload.count_ones() as u64;
        if let Some(words) = upload.dense_words() {
            acc += words.map(|w| u64::from(w.count_ones())).sum::<u64>();
        } else {
            acc += upload
                .sparse_indices()
                .expect("sparse payload")
                .sum::<u64>();
        }
        assert!(upload.matches(&reference.upload));
    }
    acc
}

#[test]
fn borrowed_decode_is_allocation_free() {
    let owned = batch(64);
    let wire = owned.encode().to_vec();

    // Sanity: the counter counts. The owned decode materializes a
    // frames vector plus one heap-backed bit array per upload, so it
    // must register a healthy number of allocations.
    let (decoded, owned_allocs) = allocs_during(|| BatchUpload::decode(&wire).expect("valid"));
    assert_eq!(decoded, owned);
    assert!(
        owned_allocs >= 64,
        "owned decode of 64 frames allocated only {owned_allocs} times — \
         is the counter wired up?"
    );

    // The claim: validate + full walk + owned comparison, zero heap
    // traffic.
    let expected = walk_borrowed(&wire, &owned);
    let (walked, borrowed_allocs) = allocs_during(|| walk_borrowed(&wire, &owned));
    assert_eq!(walked, expected);
    assert_eq!(
        borrowed_allocs, 0,
        "borrowed decode walk must not touch the heap"
    );

    // Server-side: re-ingesting a duplicate batch through the borrowed
    // path allocates O(1) in the batch size — the outcomes vector —
    // not O(frames) bit arrays. Equal counts at 64 and 256 frames pin
    // that down without hard-coding the constant.
    let scheme = Scheme::variable(2, 3.0, 1).expect("valid scheme");
    let mut allocs_by_size = Vec::new();
    for rsus in [64u64, 256] {
        let owned = batch(rsus);
        let wire = owned.encode().to_vec();
        let mut server = ShardedServer::new(scheme.clone(), 1.0, 4).expect("valid shard count");
        server.receive_batch_wire(&wire).expect("first ingest");
        let (outcomes, allocs) =
            allocs_during(|| server.receive_batch_wire(&wire).expect("duplicate ingest"));
        assert_eq!(outcomes.len(), rsus as usize);
        assert!(
            outcomes
                .iter()
                .all(|o| *o == vcps::sim::ReceiveOutcome::Duplicate),
            "re-ingest must classify every frame as a duplicate"
        );
        allocs_by_size.push(allocs);
    }
    assert_eq!(
        allocs_by_size[0], allocs_by_size[1],
        "duplicate re-ingest allocations must not scale with batch size \
         (64 frames: {}, 256 frames: {})",
        allocs_by_size[0], allocs_by_size[1]
    );
}
